// pnoc_run: the batch driver — loads a scenario grid from spec files, fans
// it out through the chosen ExecutionBackend, and emits one merged
// BENCH_<bench>.json through the scenario layer's single record path.
//
//   pnoc_run @grid.json [@more.kv ...] [mode=run|peak]
//            [backend=threads|processes|stream] [shards=N] [hosts=@hosts.json]
//            [resume=1] [bench=pnoc_run] [json=.] [scenario overrides...]
//
// Grid files are key=value stanzas (blank-line separated) or JSON (object,
// array of objects, or newline-delimited objects); each spec starts from the
// defaults and command-line scenario keys override every loaded spec (the
// command line wins).  `mode=run` measures each spec at its fixed load;
// `mode=peak` runs a saturation search per spec.  Results and BENCH records
// are bit-identical across backends, shard counts and transports, so a
// sharded sweep on many cores — or a hosts file of many machines — is a
// drop-in for the single-process run.
//
// Every run/peak record carries its `grid_index`, which makes the BENCH file
// a checkpoint: with `resume=1` an existing record's indices are skipped and
// only the remainder is dispatched, and the merged file is byte-identical
// (timing record aside) to an uninterrupted run.  Under `backend=stream`
// the driver additionally checkpoints after EVERY completed job — when
// resuming, or when no BENCH file existed at start; a failed plain re-run
// never replaces an existing complete record with a partial checkpoint —
// so a killed grid resumes from its last completion instead of its last
// exit.
#include <chrono>
#include <fstream>
#include <iostream>
#include <optional>
#include <vector>

#include "metrics/report.hpp"
#include "scenario/cli.hpp"
#include "scenario/dispatch/checkpoint.hpp"
#include "scenario/scenario_runner.hpp"
#include "scenario/spec_file.hpp"

using namespace pnoc;

namespace {

/// The serialized run/peak record for one grid index — THE record format
/// (recordRun/recordPeak) plus the grid_index and spec_key tags resume
/// keys off (spec_key fingerprints the whole spec, so a resumed record can
/// never silently carry results from different simulation parameters).
std::string serializedRecord(const scenario::ScenarioOutcome& outcome,
                             std::size_t gridIndex) {
  scenario::JsonRecorder scratch("scratch");
  if (outcome.failed) {
    // A fail-soft per-job failure: a record with the job's identity and the
    // deterministic cause, no metrics.  The checkpoint loader treats it as
    // missing, so resume=1 re-dispatches exactly these indices.
    scenario::JsonRecord& record = scratch.add(
        outcome.op == scenario::ScenarioJob::Op::kRun ? "run" : "peak");
    record.integer("failed", 1);
    record.text("error", outcome.error);
    record.text("arch", outcome.spec.get("arch"));
    record.text("pattern", outcome.spec.params.pattern);
    record.integer("grid_index", static_cast<long long>(gridIndex));
    record.text("spec_key", scenario::dispatch::specKey(outcome.spec));
    return record.serialize();
  }
  scenario::JsonRecord& record =
      outcome.op == scenario::ScenarioJob::Op::kRun
          ? scenario::recordRun(scratch, outcome.spec, outcome.metrics)
          : scenario::recordPeak(scratch,
                                 scenario::ScenarioPeak{outcome.spec, outcome.search});
  record.integer("grid_index", static_cast<long long>(gridIndex));
  record.text("spec_key", scenario::dispatch::specKey(outcome.spec));
  return record.serialize();
}

std::string joinIndices(const std::vector<std::size_t>& indices) {
  std::string out;
  for (const std::size_t i : indices) {
    if (!out.empty()) out += ",";
    out += std::to_string(i);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  scenario::ScenarioSpec base;
  scenario::Cli cli("pnoc_run",
                    "batch driver: spec grid -> execution backend -> merged BENCH records");
  cli.addKey("mode", "run (fixed-load, default) | peak (saturation search per spec)");
  cli.addKey("bench", "BENCH record name (default pnoc_run)");
  cli.addKey("json", "directory for the BENCH record (default .)");
  cli.addKey("resume", "1: reuse records from the existing BENCH file and dispatch"
                       " only missing grid indices");
  cli.setCollectSpecFiles(true);
  switch (cli.parse(argc, argv, &base)) {
    case scenario::CliStatus::kHelp:
      std::printf("\nusage: pnoc_run @grid.kv [@grid2.json ...] [key=value ...]\n"
                  "grid files: key=value stanzas (blank-line separated) or JSON\n"
                  "(object / array / newline-delimited); command-line scenario keys\n"
                  "override every loaded spec.\n");
      return 0;
    case scenario::CliStatus::kError: return 1;
    case scenario::CliStatus::kWorker: return cli.workerExitCode();
    case scenario::CliStatus::kRun: break;
  }

  std::string mode;
  std::string benchName;
  std::string jsonDir;
  bool resume = false;
  try {
    mode = cli.config().getString("mode", "run");
    benchName = cli.config().getString("bench", "pnoc_run");
    jsonDir = cli.config().getString("json", ".");
    resume = cli.config().getBool("resume", false);
    if (mode != "run" && mode != "peak") {
      std::cerr << "pnoc_run: mode must be run or peak, not '" << mode << "'\n";
      return 1;
    }
  } catch (const std::invalid_argument& error) {
    std::cerr << "pnoc_run: " << error.what() << "\n";
    return 1;
  }

  // The grid: every spec file contributes specs layered over the defaults;
  // command-line scenario keys are re-applied so they override file values.
  std::vector<scenario::ScenarioSpec> grid;
  try {
    for (const std::string& path : cli.specFiles()) {
      for (scenario::ScenarioSpec spec : scenario::loadSpecFile(path, base)) {
        spec.applyOverrides(cli.config());
        grid.push_back(std::move(spec));
      }
    }
  } catch (const std::invalid_argument& error) {
    std::cerr << "pnoc_run: " << error.what() << "\n";
    return 1;
  }
  if (grid.empty()) grid.push_back(base);  // no files: one spec from the CLI

  const std::string benchPath = jsonDir + "/BENCH_" + benchName + ".json";
  const std::string recordName = mode == "run" ? "run" : "peak";
  // Incremental checkpointing may only touch the BENCH file mid-run when the
  // operator opted into resume semantics or nothing is there to lose — a
  // failed re-run must not replace an existing complete record with a
  // partial checkpoint the user never asked for.
  const bool checkpointing = resume || !std::ifstream(benchPath).good();

  // Resume: map the existing BENCH file's records onto the grid and only
  // dispatch the indices it is missing.
  scenario::dispatch::BenchCheckpoint checkpoint;
  checkpoint.rawByIndex.resize(grid.size());
  try {
    if (resume) {
      checkpoint =
          scenario::dispatch::loadBenchCheckpoint(benchPath, recordName, grid);
    }
  } catch (const std::invalid_argument& error) {
    std::cerr << "pnoc_run: " << error.what() << "\n";
    return 1;
  }
  const std::vector<std::size_t> missing = checkpoint.missingIndices();
  if (resume) {
    std::cout << "pnoc_run: resume: " << checkpoint.presentCount() << " of "
              << grid.size() << " spec(s) already recorded, dispatching "
              << missing.size() << " job(s)\n";
  }

  const auto op = mode == "run" ? scenario::ScenarioJob::Op::kRun
                                : scenario::ScenarioJob::Op::kFindPeak;
  std::vector<scenario::ScenarioJob> jobs;
  jobs.reserve(missing.size());
  for (const std::size_t gridIndex : missing) {
    jobs.push_back(scenario::ScenarioJob{op, grid[gridIndex]});
  }

  const auto start = std::chrono::steady_clock::now();
  const auto flushCheckpoint = [&] {
    std::vector<std::string> done;
    for (const auto& raw : checkpoint.rawByIndex) {
      if (raw) done.push_back(*raw);
    }
    if (!done.empty()) {
      scenario::dispatch::writeBenchFile(jsonDir, benchName, done);
    }
  };
  std::vector<scenario::ScenarioOutcome> outcomes;
  try {
    const scenario::ScenarioRunner runner(cli.backendOptions());
    auto& backend = runner.backend();
    std::cout << "pnoc_run: " << grid.size() << " spec(s), mode=" << mode
              << ", backend=" << backend.name() << " ("
              << backend.workersFor(jobs.size()) << " worker(s))\n";

    // Streaming backends report each completed job: checkpoint the BENCH
    // file after every completion, so a killed run resumes from its last
    // finished job.  (Batch backends never fire this; they checkpoint only
    // via the final write below.)
    if (checkpointing) {
      // Rewrites are throttled to ~1/s: a checkpoint exists to bound lost
      // work after a kill, and one second of it is a fine bound — rewriting
      // a many-thousand-spec file after every cheap job is not.  Records
      // held back by the throttle flush in the final write below, or in the
      // failure path's flushCheckpoint.
      auto lastWrite = std::chrono::steady_clock::time_point{};
      backend.setOutcomeObserver(
          [&, lastWrite](std::size_t jobIndex,
                         const scenario::ScenarioOutcome& outcome) mutable {
            checkpoint.rawByIndex[missing[jobIndex]] =
                serializedRecord(outcome, missing[jobIndex]);
            const auto now = std::chrono::steady_clock::now();
            if (now - lastWrite < std::chrono::seconds(1)) return;
            lastWrite = now;
            flushCheckpoint();
          });
    }
    if (!jobs.empty()) outcomes = runner.execute(jobs);
  } catch (const std::exception& error) {
    std::cerr << "pnoc_run: " << error.what() << "\n";
    // Keep every completed job a failed dispatch had already delivered —
    // resume=1 then re-simulates only what is genuinely missing.
    if (checkpointing) flushCheckpoint();
    std::vector<std::size_t> stillMissing;
    for (std::size_t i = 0; i < checkpoint.rawByIndex.size(); ++i) {
      if (!checkpoint.rawByIndex[i]) stillMissing.push_back(i);
    }
    std::cerr << "pnoc_run: " << checkpoint.presentCount() << " of "
              << grid.size() << " spec(s) checkpointed";
    if (!stillMissing.empty() && stillMissing.size() <= 32) {
      std::cerr << "; grid index(es) " << joinIndices(stillMissing)
                << " missing";
    } else if (!stillMissing.empty()) {
      std::cerr << "; " << stillMissing.size() << " missing";
    }
    std::cerr << (checkpointing ? " (resume=1 re-dispatches the rest)\n" : "\n");
    return 1;
  }

  // Merge: fresh outcomes land at their grid indices next to the resumed
  // records, and the report table covers what THIS invocation ran.
  metrics::ReportTable table(mode == "run" ? "pnoc_run: fixed-load runs"
                                           : "pnoc_run: saturation peaks");
  if (mode == "run") {
    table.setHeader({"#", "arch", "pattern", "load", "Gb/s", "accept", "EPM (pJ)"});
  } else {
    table.setHeader({"#", "arch", "pattern", "peak load", "Gb/s", "EPM (pJ)",
                     "points"});
  }
  std::vector<std::size_t> failedIndices;
  for (std::size_t j = 0; j < outcomes.size(); ++j) {
    const auto& outcome = outcomes[j];
    const std::size_t gridIndex = missing[j];
    if (!checkpoint.rawByIndex[gridIndex]) {  // observer may have stored it
      checkpoint.rawByIndex[gridIndex] = serializedRecord(outcome, gridIndex);
    }
    if (outcome.failed) {
      // Fail-soft failures reach the BENCH file (just above) but not the
      // metrics table — their row would be all zeros.
      failedIndices.push_back(gridIndex);
      continue;
    }
    if (mode == "run") {
      table.addRow({std::to_string(gridIndex), outcome.spec.get("arch"),
                    outcome.spec.params.pattern,
                    metrics::ReportTable::num(outcome.spec.params.offeredLoad, 5),
                    metrics::ReportTable::num(outcome.metrics.deliveredGbps()),
                    metrics::ReportTable::num(outcome.metrics.acceptance(), 3),
                    metrics::ReportTable::num(outcome.metrics.energyPerPacketPj(), 1)});
    } else {
      table.addRow({std::to_string(gridIndex), outcome.spec.get("arch"),
                    outcome.spec.params.pattern,
                    metrics::ReportTable::num(outcome.search.peak.offeredLoad, 5),
                    metrics::ReportTable::num(
                        outcome.search.peak.metrics.deliveredGbps()),
                    metrics::ReportTable::num(
                        outcome.search.peak.metrics.energyPerPacketPj(), 1),
                    std::to_string(outcome.search.sweep.size())});
    }
  }
  table.print(std::cout);

  const double wallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  scenario::JsonRecorder recorder(benchName);
  for (const auto& raw : checkpoint.rawByIndex) {
    if (raw) recorder.addRaw(*raw);
  }
  scenario::recordTiming(recorder, wallSeconds, grid.size());
  const std::string written = recorder.write(jsonDir);
  if (written.empty()) {
    // The BENCH file IS the product of a grid run; a failed write (ENOSPC,
    // permissions) must not report success.
    std::cerr << "pnoc_run: failed to write the BENCH record to " << jsonDir
              << "\n";
    return 1;
  }
  std::cout << "wrote " << written << " (" << wallSeconds << " s)\n";
  if (!failedIndices.empty()) {
    // A partially-failed grid is still a failed run: every completed record
    // is checkpointed above, the failures are named, and the exit status
    // says so — scripts must not mistake a grid with holes for a clean one.
    std::cerr << "pnoc_run: " << failedIndices.size()
              << " job(s) failed at grid index(es) " << joinIndices(failedIndices)
              << " (failure records written; resume=1 re-dispatches them)\n";
    return 1;
  }
  return 0;
}

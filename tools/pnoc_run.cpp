// pnoc_run: the batch driver — loads a scenario grid from spec files, fans
// it out through the chosen ExecutionBackend, and emits one merged
// BENCH_<bench>.json through the scenario layer's single record path.
//
//   pnoc_run @grid.json [@more.kv ...] [mode=run|peak]
//            [backend=threads|processes|stream] [shards=N] [hosts=@hosts.json]
//            [resume=1] [bench=pnoc_run] [json=.] [scenario overrides...]
//
// Grid files are key=value stanzas (blank-line separated) or JSON (object,
// array of objects, or newline-delimited objects); each spec starts from the
// defaults and command-line scenario keys override every loaded spec (the
// command line wins).  `mode=run` measures each spec at its fixed load;
// `mode=peak` runs a saturation search per spec.  Results and BENCH records
// are bit-identical across backends, shard counts and transports, so a
// sharded sweep on many cores — or a hosts file of many machines — is a
// drop-in for the single-process run.
//
// Every run/peak record carries its `grid_index`, which makes the BENCH file
// a checkpoint: with `resume=1` an existing record's indices are skipped and
// only the remainder is dispatched, and the merged file is byte-identical
// (timing record aside) to an uninterrupted run.  Under `backend=stream`
// the driver additionally checkpoints after EVERY completed job — when
// resuming, or when no BENCH file existed at start; a failed plain re-run
// never replaces an existing complete record with a partial checkpoint —
// so a killed grid resumes from its last completion instead of its last
// exit.
#include <chrono>
#include <fstream>
#include <iostream>
#include <optional>
#include <vector>

#include "metrics/report.hpp"
#include "obs/trace.hpp"
#include "scenario/cli.hpp"
#include "scenario/dispatch/checkpoint.hpp"
#include "scenario/scenario_runner.hpp"
#include "scenario/spec_file.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"
#include "sim/interrupt.hpp"

using namespace pnoc;

namespace {

std::string joinIndices(const std::vector<std::size_t>& indices) {
  std::string out;
  for (const std::size_t i : indices) {
    if (!out.empty()) out += ",";
    out += std::to_string(i);
  }
  return out;
}

/// Streams one job's watch events until it goes terminal; returns 0 when the
/// job completed clean, 1 otherwise (failed, canceled, daemon gone).
int watchJob(service::ServeClient& client, std::uint64_t job) {
  client.sendLine("{\"op\":\"watch\",\"job\":" + std::to_string(job) + "}");
  while (true) {
    const scenario::JsonValue event = scenario::JsonValue::parse(client.readLine());
    if (const scenario::JsonValue* ok = event.find("ok");
        ok != nullptr && ok->asU64() == 0) {
      std::cerr << "pnoc_run: " << event.at("error").asString() << "\n";
      return 1;
    }
    const std::string kind = event.at("event").asString();
    if (kind == "unit") {
      std::cout << "pnoc_run: job " << job << ": " << event.at("done").asU64()
                << "/" << event.at("units").asU64() << " unit(s) done\n";
      continue;
    }
    if (kind != "job") continue;  // the initial watch ack
    const std::string state = event.at("state").asString();
    std::cout << "pnoc_run: job " << job << " " << state;
    if (const scenario::JsonValue* file = event.find("file");
        file != nullptr && !file->asString().empty()) {
      std::cout << " -> " << file->asString();
    }
    std::cout << "\n";
    return state == "done" ? 0 : 1;
  }
}

/// The serve= thin-client mode: one protocol op against a running
/// pnoc_serve daemon instead of a local dispatch.
int runServeClient(scenario::Cli& cli, const std::string& socketPath,
                   const std::string& mode, const std::string& benchName,
                   const std::string& jsonDir,
                   const std::vector<scenario::ScenarioSpec>& grid) {
  const std::string opName = cli.config().getString("op", "submit");
  service::Verb verb;
  try {
    verb = service::parseVerb(opName);  // typos get a did-you-mean
  } catch (const std::invalid_argument& error) {
    std::cerr << "pnoc_run: " << error.what() << "\n";
    return 1;
  }
  try {
    service::ServeClient client(socketPath);
    switch (verb) {
      case service::Verb::kSubmit: {
        std::string line = "{\"op\":\"submit\"";
        const std::string clientName = cli.config().getString("client", "");
        if (!clientName.empty()) {
          line += ",\"client\":\"" + scenario::jsonEscape(clientName) + "\"";
        }
        line += ",\"priority\":" +
                std::to_string(cli.config().getInt("priority", 0));
        line += ",\"mode\":\"" + mode + "\"";
        line += ",\"bench\":\"" + scenario::jsonEscape(benchName) + "\"";
        line += ",\"dir\":\"" + scenario::jsonEscape(jsonDir) + "\"";
        line += ",\"specs\":[";
        for (std::size_t s = 0; s < grid.size(); ++s) {
          if (s != 0) line += ",";
          line += grid[s].toJson();
        }
        line += "]}";
        const scenario::JsonValue reply = client.request(line);
        const std::uint64_t job = reply.at("job").asU64();
        std::cout << "pnoc_run: job " << job << " accepted ("
                  << reply.at("units").asU64() << " unit(s))\n";
        if (!cli.config().getBool("wait", true)) return 0;
        return watchJob(client, job);
      }
      case service::Verb::kStatus:
        client.sendLine("{\"op\":\"status\"}");
        std::cout << client.readLine() << "\n";
        return 0;
      case service::Verb::kWatch:
        return watchJob(client,
                        static_cast<std::uint64_t>(cli.config().getInt("job", 0)));
      case service::Verb::kCancel: {
        const int job = cli.config().getInt("job", 0);
        client.request("{\"op\":\"cancel\",\"job\":" + std::to_string(job) + "}");
        std::cout << "pnoc_run: job " << job << " canceled\n";
        return 0;
      }
      case service::Verb::kDrain:
        client.request("{\"op\":\"drain\"}");  // blocks until the queue is empty
        std::cout << "pnoc_run: daemon drained\n";
        return 0;
      case service::Verb::kShutdown:
        client.request("{\"op\":\"shutdown\"}");
        std::cout << "pnoc_run: daemon shutting down\n";
        return 0;
      case service::Verb::kFleetAdd: {
        std::string line = "{\"op\":\"fleet-add\",\"workers\":" +
                           std::to_string(cli.config().getInt("workers", 1));
        const std::string launcher = cli.config().getString("launcher", "");
        if (!launcher.empty()) {
          line += ",\"launcher\":\"" + scenario::jsonEscape(launcher) + "\"";
        }
        const std::string executable = cli.config().getString("executable", "");
        if (!executable.empty()) {
          line += ",\"executable\":\"" + scenario::jsonEscape(executable) + "\"";
        }
        line += "}";
        const scenario::JsonValue reply = client.request(line);
        std::cout << "pnoc_run: fleet now " << reply.at("workers").asU64()
                  << " worker(s)\n";
        return 0;
      }
      case service::Verb::kFleetRemove: {
        const int worker = cli.config().getInt("worker", 0);
        const scenario::JsonValue reply = client.request(
            "{\"op\":\"fleet-remove\",\"worker\":" + std::to_string(worker) + "}");
        std::cout << "pnoc_run: removed worker " << worker << ", fleet now "
                  << reply.at("workers").asU64() << " worker(s)\n";
        return 0;
      }
      case service::Verb::kMetrics: {
        const std::string format = cli.config().getString("metrics", "json");
        client.sendLine("{\"op\":\"metrics\",\"format\":\"" +
                        scenario::jsonEscape(format) + "\"}");
        const std::string line = client.readLine();
        const scenario::JsonValue reply = scenario::JsonValue::parse(line);
        if (const scenario::JsonValue* ok = reply.find("ok");
            ok != nullptr && ok->asU64() == 0) {
          throw std::runtime_error("pnoc_serve: " +
                                   reply.at("error").asString());
        }
        if (const scenario::JsonValue* body = reply.find("body")) {
          std::cout << body->asString();  // Prometheus text, verbatim
          return 0;
        }
        // The reply is {"ok":1,"metrics":<snapshot>}; print the snapshot
        // object itself (JsonValue keeps no raw text for objects).
        const std::string prefix = "{\"ok\":1,\"metrics\":";
        if (line.rfind(prefix, 0) == 0 && line.back() == '}') {
          std::cout << line.substr(prefix.size(),
                                   line.size() - prefix.size() - 1)
                    << "\n";
        } else {
          std::cout << line << "\n";
        }
        return 0;
      }
    }
  } catch (const std::exception& error) {
    std::cerr << "pnoc_run: " << error.what() << "\n";
    return 1;
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  scenario::ScenarioSpec base;
  scenario::Cli cli("pnoc_run",
                    "batch driver: spec grid -> execution backend -> merged BENCH records");
  cli.addKey("mode", "run (fixed-load, default) | peak (saturation search per spec)");
  cli.addKey("bench", "BENCH record name (default pnoc_run)");
  cli.addKey("json", "directory for the BENCH record (default .)");
  cli.addKey("resume", "1: reuse records from the existing BENCH file and dispatch"
                       " only missing grid indices");
  cli.addKey("serve", "pnoc_serve socket path: run as a thin client against the"
                      " daemon instead of dispatching locally");
  cli.addKey("op", "client operation (with serve=): submit (default) | status |"
                   " watch | cancel | drain | shutdown | fleet-add |"
                   " fleet-remove | metrics");
  cli.addKey("metrics", "metrics format for op=metrics: json (default) | text"
                        " (Prometheus exposition)");
  cli.addKey("trace", "Chrome-trace span output file (open in ui.perfetto.dev)");
  cli.addKey("job", "job id for op=watch / op=cancel");
  cli.addKey("priority", "submit priority; larger runs sooner (default 0)");
  cli.addKey("client", "client name for per-client fairness accounting");
  cli.addKey("wait", "0: return after the submit ack instead of watching the"
                     " job to completion (default 1)");
  cli.addKey("workers", "worker count for op=fleet-add (default 1)");
  cli.addKey("launcher", "launcher prefix for op=fleet-add (e.g. 'ssh hostA')");
  cli.addKey("executable", "worker binary for op=fleet-add");
  cli.addKey("worker", "worker slot index for op=fleet-remove");
  cli.setCollectSpecFiles(true);
  switch (cli.parse(argc, argv, &base)) {
    case scenario::CliStatus::kHelp:
      std::printf("\nusage: pnoc_run @grid.kv [@grid2.json ...] [key=value ...]\n"
                  "grid files: key=value stanzas (blank-line separated) or JSON\n"
                  "(object / array / newline-delimited); command-line scenario keys\n"
                  "override every loaded spec.\n");
      return 0;
    case scenario::CliStatus::kError: return 1;
    case scenario::CliStatus::kWorker: return cli.workerExitCode();
    case scenario::CliStatus::kRun: break;
  }

  std::string mode;
  std::string benchName;
  std::string jsonDir;
  bool resume = false;
  try {
    mode = cli.config().getString("mode", "run");
    benchName = cli.config().getString("bench", "pnoc_run");
    jsonDir = cli.config().getString("json", ".");
    resume = cli.config().getBool("resume", false);
    if (mode != "run" && mode != "peak") {
      std::cerr << "pnoc_run: mode must be run or peak, not '" << mode << "'\n";
      return 1;
    }
  } catch (const std::invalid_argument& error) {
    std::cerr << "pnoc_run: " << error.what() << "\n";
    return 1;
  }

  // The grid: every spec file contributes specs layered over the defaults;
  // command-line scenario keys are re-applied so they override file values.
  std::vector<scenario::ScenarioSpec> grid;
  try {
    for (const std::string& path : cli.specFiles()) {
      for (scenario::ScenarioSpec spec : scenario::loadSpecFile(path, base)) {
        spec.applyOverrides(cli.config());
        grid.push_back(std::move(spec));
      }
    }
  } catch (const std::invalid_argument& error) {
    std::cerr << "pnoc_run: " << error.what() << "\n";
    return 1;
  }
  if (grid.empty()) grid.push_back(base);  // no files: one spec from the CLI

  // SIGINT/SIGTERM mid-grid abort the dispatch with a named exception, so
  // the failure path below flushes the checkpoint and resume=1 picks the
  // grid back up from its last completed job.
  sim::installInterruptHandlers();

  // trace=: Chrome-trace spans for this process (dispatch, unit execution,
  // checkpoint flushes).  The guard uninstalls the global sink before the
  // writer closes on every return path.
  struct TraceGuard {
    std::unique_ptr<obs::TraceWriter> writer;
    ~TraceGuard() {
      if (writer != nullptr) obs::setTrace(nullptr);
    }
  } traceGuard;
  const std::string tracePath = cli.config().getString("trace", "");
  if (!tracePath.empty()) {
    traceGuard.writer = std::make_unique<obs::TraceWriter>(tracePath, "pnoc_run");
    if (traceGuard.writer->ok()) {
      obs::setTrace(traceGuard.writer.get());
    } else {
      std::cerr << "pnoc_run: cannot write trace '" << tracePath
                << "'; running untraced\n";
      traceGuard.writer.reset();
    }
  }

  // serve=: thin-client mode — the grid (and every other key) goes to the
  // daemon instead of a local backend.
  const std::string serveSocket = cli.config().getString("serve", "");
  if (!serveSocket.empty()) {
    return runServeClient(cli, serveSocket, mode, benchName, jsonDir, grid);
  }

  const std::string benchPath = jsonDir + "/BENCH_" + benchName + ".json";
  const std::string recordName = mode == "run" ? "run" : "peak";
  // Incremental checkpointing may only touch the BENCH file mid-run when the
  // operator opted into resume semantics or nothing is there to lose — a
  // failed re-run must not replace an existing complete record with a
  // partial checkpoint the user never asked for.
  const bool checkpointing = resume || !std::ifstream(benchPath).good();

  // Resume: map the existing BENCH file's records onto the grid and only
  // dispatch the indices it is missing.
  scenario::dispatch::BenchCheckpoint checkpoint;
  checkpoint.rawByIndex.resize(grid.size());
  try {
    if (resume) {
      checkpoint =
          scenario::dispatch::loadBenchCheckpoint(benchPath, recordName, grid);
    }
  } catch (const std::invalid_argument& error) {
    std::cerr << "pnoc_run: " << error.what() << "\n";
    return 1;
  }
  const std::vector<std::size_t> missing = checkpoint.missingIndices();
  if (resume) {
    std::cout << "pnoc_run: resume: " << checkpoint.presentCount() << " of "
              << grid.size() << " spec(s) already recorded, dispatching "
              << missing.size() << " job(s)\n";
  }

  const auto op = mode == "run" ? scenario::ScenarioJob::Op::kRun
                                : scenario::ScenarioJob::Op::kFindPeak;
  std::vector<scenario::ScenarioJob> jobs;
  jobs.reserve(missing.size());
  for (const std::size_t gridIndex : missing) {
    jobs.push_back(scenario::ScenarioJob{op, grid[gridIndex]});
  }

  const auto start = std::chrono::steady_clock::now();
  const auto flushCheckpoint = [&] {
    std::vector<std::string> done;
    for (const auto& raw : checkpoint.rawByIndex) {
      if (raw) done.push_back(*raw);
    }
    if (!done.empty()) {
      const obs::ScopedSpan span("checkpoint-flush", "driver");
      scenario::dispatch::writeBenchFile(jsonDir, benchName, done);
    }
  };
  std::vector<scenario::ScenarioOutcome> outcomes;
  try {
    const scenario::ScenarioRunner runner(cli.backendOptions());
    auto& backend = runner.backend();
    std::cout << "pnoc_run: " << grid.size() << " spec(s), mode=" << mode
              << ", backend=" << backend.name() << " ("
              << backend.workersFor(jobs.size()) << " worker(s))\n";

    // Streaming backends report each completed job: checkpoint the BENCH
    // file after every completion, so a killed run resumes from its last
    // finished job.  (Batch backends never fire this; they checkpoint only
    // via the final write below.)
    if (checkpointing) {
      // Rewrites are throttled to ~1/s: a checkpoint exists to bound lost
      // work after a kill, and one second of it is a fine bound — rewriting
      // a many-thousand-spec file after every cheap job is not.  Records
      // held back by the throttle flush in the final write below, or in the
      // failure path's flushCheckpoint.
      auto lastWrite = std::chrono::steady_clock::time_point{};
      backend.setOutcomeObserver(
          [&, lastWrite](std::size_t jobIndex,
                         const scenario::ScenarioOutcome& outcome) mutable {
            checkpoint.rawByIndex[missing[jobIndex]] =
                scenario::dispatch::serializedOutcomeRecord(outcome,
                                                            missing[jobIndex]);
            const auto now = std::chrono::steady_clock::now();
            if (now - lastWrite < std::chrono::seconds(1)) return;
            lastWrite = now;
            flushCheckpoint();
          });
    }
    if (!jobs.empty()) outcomes = runner.execute(jobs);
  } catch (const std::exception& error) {
    std::cerr << "pnoc_run: " << error.what() << "\n";
    // Keep every completed job a failed dispatch had already delivered —
    // resume=1 then re-simulates only what is genuinely missing.
    if (checkpointing) flushCheckpoint();
    std::vector<std::size_t> stillMissing;
    for (std::size_t i = 0; i < checkpoint.rawByIndex.size(); ++i) {
      if (!checkpoint.rawByIndex[i]) stillMissing.push_back(i);
    }
    std::cerr << "pnoc_run: " << checkpoint.presentCount() << " of "
              << grid.size() << " spec(s) checkpointed";
    if (!stillMissing.empty() && stillMissing.size() <= 32) {
      std::cerr << "; grid index(es) " << joinIndices(stillMissing)
                << " missing";
    } else if (!stillMissing.empty()) {
      std::cerr << "; " << stillMissing.size() << " missing";
    }
    std::cerr << (checkpointing ? " (resume=1 re-dispatches the rest)\n" : "\n");
    return 1;
  }

  // Merge: fresh outcomes land at their grid indices next to the resumed
  // records, and the report table covers what THIS invocation ran.
  metrics::ReportTable table(mode == "run" ? "pnoc_run: fixed-load runs"
                                           : "pnoc_run: saturation peaks");
  if (mode == "run") {
    table.setHeader({"#", "arch", "pattern", "load", "Gb/s", "accept", "EPM (pJ)"});
  } else {
    table.setHeader({"#", "arch", "pattern", "peak load", "Gb/s", "EPM (pJ)",
                     "points"});
  }
  std::vector<std::size_t> failedIndices;
  for (std::size_t j = 0; j < outcomes.size(); ++j) {
    const auto& outcome = outcomes[j];
    const std::size_t gridIndex = missing[j];
    if (!checkpoint.rawByIndex[gridIndex]) {  // observer may have stored it
      checkpoint.rawByIndex[gridIndex] =
          scenario::dispatch::serializedOutcomeRecord(outcome, gridIndex);
    }
    if (outcome.failed) {
      // Fail-soft failures reach the BENCH file (just above) but not the
      // metrics table — their row would be all zeros.
      failedIndices.push_back(gridIndex);
      continue;
    }
    if (mode == "run") {
      table.addRow({std::to_string(gridIndex), outcome.spec.get("arch"),
                    outcome.spec.params.pattern,
                    metrics::ReportTable::num(outcome.spec.params.offeredLoad, 5),
                    metrics::ReportTable::num(outcome.metrics.deliveredGbps()),
                    metrics::ReportTable::num(outcome.metrics.acceptance(), 3),
                    metrics::ReportTable::num(outcome.metrics.energyPerPacketPj(), 1)});
    } else {
      table.addRow({std::to_string(gridIndex), outcome.spec.get("arch"),
                    outcome.spec.params.pattern,
                    metrics::ReportTable::num(outcome.search.peak.offeredLoad, 5),
                    metrics::ReportTable::num(
                        outcome.search.peak.metrics.deliveredGbps()),
                    metrics::ReportTable::num(
                        outcome.search.peak.metrics.energyPerPacketPj(), 1),
                    std::to_string(outcome.search.sweep.size())});
    }
  }
  table.print(std::cout);

  const double wallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  scenario::JsonRecorder recorder(benchName);
  for (const auto& raw : checkpoint.rawByIndex) {
    if (raw) recorder.addRaw(*raw);
  }
  scenario::recordTiming(recorder, wallSeconds, grid.size());
  std::string written;
  {
    const obs::ScopedSpan span("checkpoint-flush", "driver");
    written = recorder.write(jsonDir);
  }
  if (written.empty()) {
    // The BENCH file IS the product of a grid run; a failed write (ENOSPC,
    // permissions) must not report success.
    std::cerr << "pnoc_run: failed to write the BENCH record to " << jsonDir
              << "\n";
    return 1;
  }
  std::cout << "wrote " << written << " (" << wallSeconds << " s)\n";
  if (!failedIndices.empty()) {
    // A partially-failed grid is still a failed run: every completed record
    // is checkpointed above, the failures are named, and the exit status
    // says so — scripts must not mistake a grid with holes for a clean one.
    std::cerr << "pnoc_run: " << failedIndices.size()
              << " job(s) failed at grid index(es) " << joinIndices(failedIndices)
              << " (failure records written; resume=1 re-dispatches them)\n";
    return 1;
  }
  return 0;
}

// pnoc_run: the batch driver — loads a scenario grid from spec files, fans
// it out through the chosen ExecutionBackend, and emits one merged
// BENCH_<bench>.json through the scenario layer's single record path.
//
//   pnoc_run @grid.json [@more.kv ...] [mode=run|peak] [backend=threads|processes]
//            [shards=N] [bench=pnoc_run] [json=.] [scenario overrides...]
//
// Grid files are key=value stanzas (blank-line separated) or JSON (object,
// array of objects, or newline-delimited objects); each spec starts from the
// defaults and command-line scenario keys override every loaded spec (the
// command line wins).  `mode=run` measures each spec at its fixed load;
// `mode=peak` runs a saturation search per spec.  Results and BENCH records
// are bit-identical across backends and shard counts, so a sharded sweep on
// many cores is a drop-in for the single-process run.
#include <chrono>
#include <iostream>

#include "metrics/report.hpp"
#include "scenario/cli.hpp"
#include "scenario/scenario_runner.hpp"
#include "scenario/spec_file.hpp"

using namespace pnoc;

int main(int argc, char** argv) {
  scenario::ScenarioSpec base;
  scenario::Cli cli("pnoc_run",
                    "batch driver: spec grid -> execution backend -> merged BENCH records");
  cli.addKey("mode", "run (fixed-load, default) | peak (saturation search per spec)");
  cli.addKey("bench", "BENCH record name (default pnoc_run)");
  cli.addKey("json", "directory for the BENCH record (default .)");
  cli.setCollectSpecFiles(true);
  switch (cli.parse(argc, argv, &base)) {
    case scenario::CliStatus::kHelp:
      std::printf("\nusage: pnoc_run @grid.kv [@grid2.json ...] [key=value ...]\n"
                  "grid files: key=value stanzas (blank-line separated) or JSON\n"
                  "(object / array / newline-delimited); command-line scenario keys\n"
                  "override every loaded spec.\n");
      return 0;
    case scenario::CliStatus::kError: return 1;
    case scenario::CliStatus::kWorker: return cli.workerExitCode();
    case scenario::CliStatus::kRun: break;
  }

  std::string mode;
  std::string benchName;
  std::string jsonDir;
  try {
    mode = cli.config().getString("mode", "run");
    benchName = cli.config().getString("bench", "pnoc_run");
    jsonDir = cli.config().getString("json", ".");
    if (mode != "run" && mode != "peak") {
      std::cerr << "pnoc_run: mode must be run or peak, not '" << mode << "'\n";
      return 1;
    }
  } catch (const std::invalid_argument& error) {
    std::cerr << "pnoc_run: " << error.what() << "\n";
    return 1;
  }

  // The grid: every spec file contributes specs layered over the defaults;
  // command-line scenario keys are re-applied so they override file values.
  std::vector<scenario::ScenarioSpec> grid;
  try {
    for (const std::string& path : cli.specFiles()) {
      for (scenario::ScenarioSpec spec : scenario::loadSpecFile(path, base)) {
        spec.applyOverrides(cli.config());
        grid.push_back(std::move(spec));
      }
    }
  } catch (const std::invalid_argument& error) {
    std::cerr << "pnoc_run: " << error.what() << "\n";
    return 1;
  }
  if (grid.empty()) grid.push_back(base);  // no files: one spec from the CLI

  const scenario::ScenarioRunner runner(cli.backendOptions());
  const auto& backend = runner.backend();
  std::cout << "pnoc_run: " << grid.size() << " spec(s), mode=" << mode
            << ", backend=" << backend.name() << " ("
            << backend.workersFor(grid.size()) << " worker(s))\n";

  scenario::JsonRecorder recorder(benchName);
  const auto start = std::chrono::steady_clock::now();
  try {
    if (mode == "run") {
      const auto results = runner.run(grid);
      metrics::ReportTable table("pnoc_run: fixed-load runs");
      table.setHeader({"#", "arch", "pattern", "load", "Gb/s", "accept", "EPM (pJ)"});
      for (std::size_t i = 0; i < results.size(); ++i) {
        const auto& r = results[i];
        table.addRow({std::to_string(i), r.spec.get("arch"), r.spec.params.pattern,
                      metrics::ReportTable::num(r.spec.params.offeredLoad, 5),
                      metrics::ReportTable::num(r.metrics.deliveredGbps()),
                      metrics::ReportTable::num(r.metrics.acceptance(), 3),
                      metrics::ReportTable::num(r.metrics.energyPerPacketPj(), 1)});
        scenario::recordRun(recorder, r.spec, r.metrics);
      }
      table.print(std::cout);
    } else {
      const auto peaks = runner.findPeaks(grid);
      metrics::ReportTable table("pnoc_run: saturation peaks");
      table.setHeader({"#", "arch", "pattern", "peak load", "Gb/s", "EPM (pJ)",
                       "points"});
      for (std::size_t i = 0; i < peaks.size(); ++i) {
        const auto& p = peaks[i];
        table.addRow({std::to_string(i), p.spec.get("arch"), p.spec.params.pattern,
                      metrics::ReportTable::num(p.search.peak.offeredLoad, 5),
                      metrics::ReportTable::num(p.search.peak.metrics.deliveredGbps()),
                      metrics::ReportTable::num(
                          p.search.peak.metrics.energyPerPacketPj(), 1),
                      std::to_string(p.search.sweep.size())});
        scenario::recordPeak(recorder, p);
      }
      table.print(std::cout);
    }
  } catch (const std::exception& error) {
    std::cerr << "pnoc_run: " << error.what() << "\n";
    return 1;
  }

  const double wallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  scenario::recordTiming(recorder, wallSeconds, grid.size());
  std::cout << "wrote " << recorder.write(jsonDir) << " (" << wallSeconds << " s)\n";
  return 0;
}

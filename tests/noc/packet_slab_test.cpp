#include "noc/packet_slab.hpp"

#include <gtest/gtest.h>

namespace pnoc::noc {
namespace {

PacketDescriptor descriptor(PacketId id) {
  PacketDescriptor packet;
  packet.id = id;
  packet.numFlits = 4;
  packet.bitsPerFlit = 32;
  return packet;
}

TEST(PacketSlab, InternCopiesAndHandsStableHandle) {
  PacketSlab slab;
  PacketDescriptor original = descriptor(42);
  const PacketHandle handle = slab.intern(original);
  original.id = 99;  // the slab holds its own copy
  EXPECT_EQ(handle->id, 42u);
  EXPECT_EQ(slab.live(), 1u);
}

TEST(PacketSlab, HandlesSurviveFurtherInterning) {
  // std::deque storage: earlier handles must stay valid as the slab grows.
  PacketSlab slab;
  std::vector<PacketHandle> handles;
  for (PacketId id = 0; id < 1000; ++id) handles.push_back(slab.intern(descriptor(id)));
  for (PacketId id = 0; id < 1000; ++id) EXPECT_EQ(handles[id]->id, id);
}

TEST(PacketSlab, ReleaseRecyclesSlots) {
  PacketSlab slab;
  const PacketHandle first = slab.intern(descriptor(1));
  slab.release(first);
  EXPECT_EQ(slab.live(), 0u);
  const PacketHandle second = slab.intern(descriptor(2));
  // The freed slot is reused: no new storage, same address, new contents.
  EXPECT_EQ(second, first);
  EXPECT_EQ(second->id, 2u);
  EXPECT_EQ(slab.slots(), 1u);
}

TEST(PacketSlab, SlotsTrackPeakLiveCount) {
  PacketSlab slab;
  std::vector<PacketHandle> handles;
  for (PacketId id = 0; id < 8; ++id) handles.push_back(slab.intern(descriptor(id)));
  for (const PacketHandle handle : handles) slab.release(handle);
  // Steady-state churn after the peak allocates nothing new.
  for (PacketId id = 100; id < 200; ++id) {
    const PacketHandle handle = slab.intern(descriptor(id));
    slab.release(handle);
  }
  EXPECT_EQ(slab.slots(), 8u);
  EXPECT_EQ(slab.live(), 0u);
}

}  // namespace
}  // namespace pnoc::noc

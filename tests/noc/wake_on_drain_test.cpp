// Wake-on-drain backpressure edges: a sink that blocks an upstream
// component wakes it exactly when capacity frees, so the upstream can park
// instead of polling — and an occupied-but-blocked electrical router
// actually parks and resumes losslessly.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "noc/buffered_port.hpp"
#include "noc/link.hpp"
#include "noc/packet_slab.hpp"
#include "noc/router.hpp"
#include "sim/engine.hpp"

namespace pnoc::noc {
namespace {

PacketHandle makePacket(PacketId id, CoreId dst, std::uint32_t numFlits,
                        Bits bitsPerFlit = 32) {
  static PacketSlab slab;
  PacketDescriptor packet;
  packet.id = id;
  packet.dstCore = dst;
  packet.numFlits = numFlits;
  packet.bitsPerFlit = bitsPerFlit;
  return slab.intern(packet);
}

/// Downstream sink with controllable fullness.
class GateSink final : public FlitSink {
 public:
  bool canAccept(const Flit&) const override { return !blocked; }
  void accept(const Flit& flit, Cycle) override { flits.push_back(flit); }
  bool blocked = false;
  std::vector<Flit> flits;
};

/// Parkable component that records its activations.
class Waiter final : public sim::Clocked {
 public:
  void evaluate(Cycle cycle) override { activations.push_back(cycle); }
  void advance(Cycle) override {}
  std::string name() const override { return "waiter"; }
  bool quiescent() const override { return true; }  // parks unless woken
  std::vector<Cycle> activations;
};

TEST(WakeOnDrain, LinkWakesWaiterWhenSlotFrees) {
  GateSink sink;
  Link link("l", /*latency=*/1, 0.0, sink);
  Waiter waiter;
  sim::Engine engine;
  engine.add(link);
  engine.add(waiter);
  engine.step();  // both park (link empty, waiter always quiescent)
  EXPECT_EQ(engine.activeCount(), 0u);

  sink.blocked = true;
  const PacketHandle packet = makePacket(1, 0, 2);
  link.accept(makeFlit(packet, 0), engine.now());
  ASSERT_FALSE(link.canAccept(makeFlit(packet, 1)));  // capacity 1: now full
  EXPECT_TRUE(link.notifyOnDrain(waiter));
  const std::size_t before = waiter.activations.size();
  engine.run(3);  // head stalls against the blocked sink: no drain, no wake
  EXPECT_EQ(waiter.activations.size(), before);

  sink.blocked = false;
  engine.step();  // link delivers in advance() and frees the slot
  ASSERT_EQ(sink.flits.size(), 1u);
  const Cycle deliveredAt = engine.now() - 1;
  engine.step();  // the wake lands the cycle after the drain
  ASSERT_EQ(waiter.activations.size(), before + 1);
  EXPECT_EQ(waiter.activations.back(), deliveredAt + 1);

  // One-shot: a second drain without re-registration must not wake again.
  link.accept(makeFlit(packet, 1), engine.now());
  engine.run(3);
  EXPECT_EQ(sink.flits.size(), 2u);
  EXPECT_EQ(waiter.activations.size(), before + 1);
}

TEST(WakeOnDrain, BufferedPortWakesWaiterOnPop) {
  BufferedPort port(/*numVcs=*/1, /*depthFlits=*/2);
  Waiter waiter;
  sim::Engine engine;
  engine.add(waiter);
  engine.step();
  EXPECT_EQ(engine.activeCount(), 0u);

  const PacketHandle packet = makePacket(2, 0, 3);
  port.accept(makeFlit(packet, 0), 0);
  port.accept(makeFlit(packet, 1), 0);
  ASSERT_FALSE(port.canAccept(makeFlit(packet, 2)));  // VC full
  EXPECT_TRUE(port.notifyOnDrain(waiter));
  engine.run(2);
  const std::size_t before = waiter.activations.size();

  port.pop(0, engine.now());  // frees a slot: one-shot wake
  engine.step();
  EXPECT_EQ(waiter.activations.size(), before + 1);
  port.pop(0, engine.now());  // no registration left: no wake
  engine.run(2);
  EXPECT_EQ(waiter.activations.size(), before + 1);
}

TEST(WakeOnDrain, BlockedRouterParksAndResumesWithoutLoss) {
  // router -> link(latency 1, capacity 1) -> gate sink.  With the sink
  // blocked the link fills, the router stalls with buffered flits and must
  // park; unblocking drains the link, whose slot-free wake resumes the
  // router until every flit is delivered.
  RouterConfig config;
  config.numPorts = 2;
  config.vcsPerPort = 2;
  config.vcDepthFlits = 8;
  config.pipelineLatency = 3;
  GateSink sink;
  ElectricalRouter router("r", config,
                          [](const PacketDescriptor&) -> std::uint32_t { return 1; });
  Link link("l", /*latency=*/1, 0.0, sink);
  router.connectOutput(0, link);  // unused
  router.connectOutput(1, link);
  sim::Engine engine;
  engine.add(router);
  engine.add(link);

  sink.blocked = true;
  const PacketHandle packet = makePacket(3, 1, 6);
  for (std::uint32_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(router.canAcceptFlit(0, makeFlit(packet, i)));
    router.acceptFlit(0, makeFlit(packet, i), engine.now());
  }
  engine.run(20);
  // Head moved into the link, then everything stalled: the router must be
  // parked even though it still buffers flits (the link keeps polling the
  // blocked sink and counts the stall).
  EXPECT_GT(router.occupancy(), 0u);
  EXPECT_TRUE(router.quiescent());
  EXPECT_EQ(engine.activeCount(), 1u);  // just the link
  EXPECT_TRUE(sink.flits.empty());

  sink.blocked = false;
  engine.run(30);  // drain wakes ripple: every flit must arrive, in order
  ASSERT_EQ(sink.flits.size(), 6u);
  for (std::uint32_t i = 0; i < 6; ++i) EXPECT_EQ(sink.flits[i].sequence, i);
  EXPECT_EQ(router.occupancy(), 0u);
  EXPECT_EQ(engine.activeCount(), 0u);  // everything back asleep
}

TEST(PacketVcMap, InsertFindErase) {
  PacketVcMap map;
  EXPECT_EQ(map.find(7), kNoVc);
  map.insert(7, 2);
  map.insert(9, 0);
  EXPECT_EQ(map.find(7), 2u);
  EXPECT_EQ(map.find(9), 0u);
  map.erase(7);
  EXPECT_EQ(map.find(7), kNoVc);
  EXPECT_EQ(map.find(9), 0u);
  map.clear();
  EXPECT_EQ(map.find(9), kNoVc);
}

TEST(VcBufferBank, TracksHeadFrontCount) {
  VcBufferBank bank(2, 4);
  EXPECT_EQ(bank.headFrontCount(), 0u);
  const PacketHandle packet = makePacket(4, 0, 3);
  bank.push(0, makeFlit(packet, 0), 0);  // head
  EXPECT_EQ(bank.headFrontCount(), 1u);
  bank.push(0, makeFlit(packet, 1), 0);  // body behind it
  EXPECT_EQ(bank.headFrontCount(), 1u);
  bank.pop(0, 1);  // head leaves: body at front
  EXPECT_EQ(bank.headFrontCount(), 0u);
  bank.pop(0, 2);
  bank.push(1, makeFlit(makePacket(5, 0, 1), 0), 3);  // single-flit head/tail
  EXPECT_EQ(bank.headFrontCount(), 1u);
  bank.reset();
  EXPECT_EQ(bank.headFrontCount(), 0u);
}

}  // namespace
}  // namespace pnoc::noc

#include "noc/arbiter.hpp"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

namespace pnoc::noc {
namespace {

std::vector<bool> requests(std::initializer_list<int> indices, std::uint32_t size) {
  std::vector<bool> out(size, false);
  for (const int i : indices) out[static_cast<std::size_t>(i)] = true;
  return out;
}

/// Both arbiter kinds must satisfy the same contract; run the shared suite
/// over each via a parameterized fixture.
class ArbiterContract : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<Arbiter> make(std::uint32_t size) { return makeArbiter(GetParam(), size); }
};

TEST_P(ArbiterContract, NoRequestsNoGrant) {
  auto arbiter = make(4);
  EXPECT_EQ(arbiter->grant(requests({}, 4)), kNoGrant);
}

TEST_P(ArbiterContract, SingleRequestWins) {
  auto arbiter = make(4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(arbiter->grant(requests({i}, 4)), static_cast<std::uint32_t>(i));
  }
}

TEST_P(ArbiterContract, GrantIsAlwaysARequester) {
  auto arbiter = make(5);
  const auto mask = requests({1, 3}, 5);
  for (int i = 0; i < 20; ++i) {
    const auto winner = arbiter->grant(mask);
    EXPECT_TRUE(winner == 1 || winner == 3);
  }
}

TEST_P(ArbiterContract, StarvationFree) {
  // Under persistent full contention, every requester is granted within a
  // window of `size` grants.
  auto arbiter = make(4);
  const auto all = requests({0, 1, 2, 3}, 4);
  std::map<std::uint32_t, int> lastGranted;
  for (int round = 0; round < 40; ++round) {
    const auto winner = arbiter->grant(all);
    ASSERT_NE(winner, kNoGrant);
    lastGranted[winner] = round;
  }
  ASSERT_EQ(lastGranted.size(), 4u);
  for (const auto& [who, when] : lastGranted) EXPECT_GE(when, 36) << "requester " << who;
}

TEST_P(ArbiterContract, FairShareUnderFullLoad) {
  auto arbiter = make(3);
  const auto all = requests({0, 1, 2}, 3);
  std::map<std::uint32_t, int> counts;
  for (int i = 0; i < 300; ++i) ++counts[arbiter->grant(all)];
  for (const auto& [who, count] : counts) EXPECT_EQ(count, 100) << "requester " << who;
}

INSTANTIATE_TEST_SUITE_P(AllKinds, ArbiterContract,
                         ::testing::Values("round-robin", "matrix"));

TEST(RoundRobinArbiter, RotatesPriorityPastWinner) {
  RoundRobinArbiter arbiter(3);
  EXPECT_EQ(arbiter.grant(requests({0, 2}, 3)), 0u);
  // Priority now starts at 1; index 2 beats 0.
  EXPECT_EQ(arbiter.grant(requests({0, 2}, 3)), 2u);
  EXPECT_EQ(arbiter.grant(requests({0, 2}, 3)), 0u);
}

TEST(MatrixArbiter, LeastRecentlyServedWins) {
  MatrixArbiter arbiter(3);
  EXPECT_EQ(arbiter.grant(requests({0, 1, 2}, 3)), 0u);
  EXPECT_EQ(arbiter.grant(requests({0, 1, 2}, 3)), 1u);
  EXPECT_EQ(arbiter.grant(requests({0, 1, 2}, 3)), 2u);
  // 0 was served longest ago among {0,1}.
  EXPECT_EQ(arbiter.grant(requests({0, 1}, 3)), 0u);
  // 2 was served after 1, so 1 wins.
  EXPECT_EQ(arbiter.grant(requests({1, 2}, 3)), 1u);
}

TEST(ArbiterFactory, RejectsUnknownKind) {
  EXPECT_THROW(makeArbiter("random", 4), std::invalid_argument);
}

}  // namespace
}  // namespace pnoc::noc

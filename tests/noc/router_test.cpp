#include "noc/router.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "noc/crossbar.hpp"
#include "noc/link.hpp"
#include "noc/packet_slab.hpp"
#include "sim/engine.hpp"

namespace pnoc::noc {
namespace {

/// Descriptors live in a test-local slab so flit handles stay valid for the
/// whole test (as the network's per-run slab guarantees in production).
PacketHandle makePacket(PacketId id, CoreId dst, std::uint32_t numFlits,
                        Bits bitsPerFlit = 32) {
  static PacketSlab slab;
  PacketDescriptor packet;
  packet.id = id;
  packet.dstCore = dst;
  packet.numFlits = numFlits;
  packet.bitsPerFlit = bitsPerFlit;
  return slab.intern(packet);
}

/// Test sink that records accepted flits and can simulate fullness.
class RecordingSink final : public FlitSink {
 public:
  bool canAccept(const Flit&) const override { return !blocked; }
  void accept(const Flit& flit, Cycle now) override {
    flits.push_back(flit);
    arrivals.push_back(now);
  }
  bool blocked = false;
  std::vector<Flit> flits;
  std::vector<Cycle> arrivals;
};

RouterConfig smallConfig() {
  RouterConfig config;
  config.numPorts = 3;
  config.vcsPerPort = 2;
  config.vcDepthFlits = 8;
  config.pipelineLatency = 3;
  return config;
}

/// Routes by destination core id modulo port count (test-only convention).
std::uint32_t routeByDst(const PacketDescriptor& packet) { return packet.dstCore % 3; }

class RouterTest : public ::testing::Test {
 protected:
  RouterTest() : router("r", smallConfig(), routeByDst) {
    for (std::uint32_t p = 0; p < 3; ++p) router.connectOutput(p, sinks[p]);
    engine.add(router);
  }

  void injectPacket(std::uint32_t port, PacketHandle packet) {
    for (std::uint32_t i = 0; i < packet->numFlits; ++i) {
      const Flit flit = makeFlit(packet, i);
      ASSERT_TRUE(router.canAcceptFlit(port, flit));
      router.acceptFlit(port, flit, engine.now());
    }
  }

  sim::Engine engine;
  ElectricalRouter router;
  RecordingSink sinks[3];
};

TEST_F(RouterTest, DeliversWholePacketInOrder) {
  injectPacket(0, makePacket(1, 1, 4));  // dst 1 -> output port 1
  engine.run(12);
  ASSERT_EQ(sinks[1].flits.size(), 4u);
  for (std::uint32_t i = 0; i < 4; ++i) EXPECT_EQ(sinks[1].flits[i].sequence, i);
  EXPECT_TRUE(sinks[0].flits.empty());
  EXPECT_TRUE(sinks[2].flits.empty());
}

TEST_F(RouterTest, RespectsPipelineLatency) {
  injectPacket(0, makePacket(1, 1, 1));
  engine.run(12);
  ASSERT_EQ(sinks[1].flits.size(), 1u);
  // 3-stage pipeline: a flit accepted at cycle 0 leaves at cycle 2 earliest.
  EXPECT_GE(sinks[1].arrivals[0], 2u);
}

TEST_F(RouterTest, OneFlitPerOutputPerCycle) {
  injectPacket(0, makePacket(1, 1, 6));
  engine.run(20);
  ASSERT_EQ(sinks[1].flits.size(), 6u);
  for (std::size_t i = 1; i < sinks[1].arrivals.size(); ++i) {
    EXPECT_GT(sinks[1].arrivals[i], sinks[1].arrivals[i - 1]);
  }
}

TEST_F(RouterTest, WormholeDoesNotInterleavePacketsOnOneOutput) {
  injectPacket(0, makePacket(1, 1, 4));
  injectPacket(1, makePacket(2, 1, 4));  // same output port 1
  engine.run(30);
  ASSERT_EQ(sinks[1].flits.size(), 8u);
  // Once a packet's head goes through, all its flits precede the other's.
  const PacketId first = sinks[1].flits[0].packet().id;
  for (int i = 0; i < 4; ++i) EXPECT_EQ(sinks[1].flits[i].packet().id, first);
  const PacketId second = sinks[1].flits[4].packet().id;
  EXPECT_NE(first, second);
  for (int i = 4; i < 8; ++i) EXPECT_EQ(sinks[1].flits[i].packet().id, second);
}

TEST_F(RouterTest, DistinctOutputsFlowInParallel) {
  injectPacket(0, makePacket(1, 0, 4));  // -> output 0
  injectPacket(1, makePacket(2, 1, 4));  // -> output 1
  engine.run(10);
  EXPECT_EQ(sinks[0].flits.size(), 4u);
  EXPECT_EQ(sinks[1].flits.size(), 4u);
}

TEST_F(RouterTest, BlockedSinkBackpressures) {
  sinks[1].blocked = true;
  injectPacket(0, makePacket(1, 1, 2));
  engine.run(10);
  EXPECT_TRUE(sinks[1].flits.empty());
  EXPECT_EQ(router.occupancy(), 2u);
  sinks[1].blocked = false;
  engine.run(10);
  EXPECT_EQ(sinks[1].flits.size(), 2u);
  EXPECT_EQ(router.occupancy(), 0u);
}

TEST_F(RouterTest, HeadRefusedWhenAllVcsBusy) {
  // Two VCs per port: two in-flight packets exhaust them.
  sinks[1].blocked = true;
  injectPacket(0, makePacket(1, 1, 2));
  injectPacket(0, makePacket(2, 1, 2));
  const Flit head = makeFlit(makePacket(3, 1, 2), 0);
  EXPECT_FALSE(router.canAcceptFlit(0, head));
}

TEST_F(RouterTest, BodyWithoutHeadRefused) {
  const Flit body = makeFlit(makePacket(9, 1, 3), 1);
  EXPECT_FALSE(router.canAcceptFlit(0, body));
}

TEST_F(RouterTest, EnergyChargedPerBit) {
  injectPacket(0, makePacket(1, 1, 4, 32));
  engine.run(12);
  EXPECT_EQ(router.stats().bitsRouted, 128u);
  EXPECT_DOUBLE_EQ(router.stats().energyPj, 128 * 0.625);
}

TEST(Crossbar, ConnectAndTraverse) {
  Crossbar crossbar(3, 3);
  crossbar.connect(0, 2);
  EXPECT_TRUE(crossbar.inputBusy(0));
  EXPECT_TRUE(crossbar.outputBusy(2));
  EXPECT_FALSE(crossbar.outputBusy(1));
  const Flit flit = makeFlit(makePacket(1, 0, 1, 64), 0);
  crossbar.traverse(0, flit);
  EXPECT_EQ(crossbar.bitsSwitched(), 64u);
  crossbar.reset();
  EXPECT_FALSE(crossbar.inputBusy(0));
}

TEST(Link, DeliversAfterLatency) {
  RecordingSink sink;
  Link link("l", 3, 0.1, sink);
  sim::Engine engine;
  engine.add(link);
  const Flit flit = makeFlit(makePacket(1, 0, 1), 0);
  ASSERT_TRUE(link.canAccept(flit));
  link.accept(flit, 0);
  engine.run(3);  // cycles 0..2: still traversing the wire
  EXPECT_TRUE(sink.flits.empty());
  engine.run(1);
  ASSERT_EQ(sink.flits.size(), 1u);
  EXPECT_EQ(sink.arrivals[0], 3u);  // accepted during cycle 0, arrives at 0+3
}

TEST(Link, BackpressureStallsWithoutLoss) {
  RecordingSink sink;
  sink.blocked = true;
  Link link("l", 1, 0.1, sink);
  sim::Engine engine;
  engine.add(link);
  const auto packet = makePacket(1, 0, 2);
  link.accept(makeFlit(packet, 0), 0);
  EXPECT_FALSE(link.canAccept(makeFlit(packet, 1)));  // pipe full (capacity 1)
  engine.run(5);
  EXPECT_TRUE(sink.flits.empty());
  EXPECT_GT(link.stats().stallCycles, 0u);
  sink.blocked = false;
  engine.run(2);
  EXPECT_EQ(sink.flits.size(), 1u);
}

TEST(Link, CountsEnergyPerBit) {
  RecordingSink sink;
  Link link("l", 1, 0.5, sink);
  sim::Engine engine;
  engine.add(link);
  link.accept(makeFlit(makePacket(1, 0, 1, 100), 0), 0);
  engine.run(3);
  EXPECT_DOUBLE_EQ(link.stats().energyPj, 50.0);
  EXPECT_EQ(link.stats().bitsDelivered, 100u);
}

}  // namespace
}  // namespace pnoc::noc

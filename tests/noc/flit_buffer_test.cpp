#include <gtest/gtest.h>

#include "noc/buffered_port.hpp"
#include "noc/flit.hpp"
#include "noc/packet_slab.hpp"
#include "noc/topology.hpp"
#include "noc/vc_buffer.hpp"

namespace pnoc::noc {
namespace {

/// Descriptors live in a test-local slab so flit handles stay valid for the
/// whole test (as the network's per-run slab guarantees in production).
PacketHandle makePacket(PacketId id, std::uint32_t numFlits, Bits bitsPerFlit = 32) {
  static PacketSlab slab;
  PacketDescriptor packet;
  packet.id = id;
  packet.numFlits = numFlits;
  packet.bitsPerFlit = bitsPerFlit;
  return slab.intern(packet);
}

TEST(Flit, TypesByPosition) {
  const auto packet = makePacket(1, 4);
  EXPECT_EQ(makeFlit(packet, 0).type, FlitType::kHead);
  EXPECT_EQ(makeFlit(packet, 1).type, FlitType::kBody);
  EXPECT_EQ(makeFlit(packet, 2).type, FlitType::kBody);
  EXPECT_EQ(makeFlit(packet, 3).type, FlitType::kTail);
}

TEST(Flit, SingleFlitPacketIsHeadTail) {
  const auto packet = makePacket(2, 1);
  const Flit flit = makeFlit(packet, 0);
  EXPECT_EQ(flit.type, FlitType::kHeadTail);
  EXPECT_TRUE(flit.isHead());
  EXPECT_TRUE(flit.isTail());
}

TEST(Flit, TotalBits) {
  EXPECT_EQ(makePacket(3, 64, 32)->totalBits(), 2048u);  // BW set 1 geometry
  EXPECT_EQ(makePacket(4, 16, 128)->totalBits(), 2048u);  // BW set 2
  EXPECT_EQ(makePacket(5, 8, 256)->totalBits(), 2048u);  // BW set 3
}

TEST(VirtualChannel, FifoOrder) {
  VirtualChannel vc(4);
  const auto packet = makePacket(1, 3);
  for (std::uint32_t i = 0; i < 3; ++i) vc.push(makeFlit(packet, i), i);
  EXPECT_EQ(vc.pop(5).sequence, 0u);
  EXPECT_EQ(vc.pop(5).sequence, 1u);
  EXPECT_EQ(vc.pop(5).sequence, 2u);
  EXPECT_TRUE(vc.empty());
}

TEST(VirtualChannel, CapacityAndFreeSlots) {
  VirtualChannel vc(2);
  const auto packet = makePacket(1, 2);
  EXPECT_EQ(vc.freeSlots(), 2u);
  vc.push(makeFlit(packet, 0), 0);
  EXPECT_EQ(vc.freeSlots(), 1u);
  vc.push(makeFlit(packet, 1), 0);
  EXPECT_TRUE(vc.full());
}

TEST(VirtualChannel, ResidencyBitCycles) {
  VirtualChannel vc(4);
  const auto packet = makePacket(1, 1, 32);
  vc.push(makeFlit(packet, 0), 10);
  vc.pop(25);  // resident 15 cycles
  EXPECT_EQ(vc.stats().bitCyclesResident, 32u * 15u);
}

TEST(VirtualChannel, StatsCountBits) {
  VirtualChannel vc(4);
  const auto packet = makePacket(1, 2, 128);
  vc.push(makeFlit(packet, 0), 0);
  vc.push(makeFlit(packet, 1), 0);
  vc.pop(1);
  EXPECT_EQ(vc.stats().bitsWritten, 256u);
  EXPECT_EQ(vc.stats().bitsRead, 128u);
  EXPECT_EQ(vc.stats().peakOccupancy, 2u);
}

TEST(VcBufferBank, FindFreeSkipsLockedAndOccupied) {
  VcBufferBank bank(3, 2);
  EXPECT_EQ(bank.findFreeVcForNewPacket(), 0u);
  bank.lock(0);
  EXPECT_EQ(bank.findFreeVcForNewPacket(), 1u);
  bank.push(1, makeFlit(makePacket(1, 2), 0), 0);
  EXPECT_EQ(bank.findFreeVcForNewPacket(), 2u);
  bank.lock(2);
  EXPECT_EQ(bank.findFreeVcForNewPacket(), kNoVc);
  EXPECT_TRUE(bank.allBusy());
}

TEST(VcBufferBank, AggregateStats) {
  VcBufferBank bank(2, 4);
  const auto packet = makePacket(1, 2, 64);
  bank.push(0, makeFlit(packet, 0), 0);
  bank.push(1, makeFlit(packet, 1), 0);
  const BufferStats stats = bank.aggregateStats();
  EXPECT_EQ(stats.flitsWritten, 2u);
  EXPECT_EQ(stats.bitsWritten, 128u);
  EXPECT_EQ(bank.totalOccupancy(), 2u);
}

TEST(BufferedPort, HeadAllocatesVcAndBodyFollows) {
  BufferedPort port(2, 4);
  const auto packet = makePacket(7, 3);
  ASSERT_TRUE(port.canAccept(makeFlit(packet, 0)));
  port.accept(makeFlit(packet, 0), 0);
  port.accept(makeFlit(packet, 1), 1);
  port.accept(makeFlit(packet, 2), 2);
  // All flits of the packet must land in the same VC, in order.
  EXPECT_EQ(port.bank().vc(0).size(), 3u);
  EXPECT_EQ(port.pop(0, 3).sequence, 0u);
  EXPECT_EQ(port.pop(0, 3).sequence, 1u);
  EXPECT_EQ(port.pop(0, 3).sequence, 2u);
}

TEST(BufferedPort, RejectsBodyWithoutHead) {
  BufferedPort port(2, 4);
  const auto packet = makePacket(8, 3);
  EXPECT_FALSE(port.canAccept(makeFlit(packet, 1)));
}

TEST(BufferedPort, TailPopUnlocksVc) {
  BufferedPort port(1, 4);
  const auto first = makePacket(1, 2);
  port.accept(makeFlit(first, 0), 0);
  port.accept(makeFlit(first, 1), 0);
  // Only one VC and it is locked: a second packet's head must be refused.
  const auto second = makePacket(2, 2);
  EXPECT_FALSE(port.canAccept(makeFlit(second, 0)));
  port.pop(0, 1);
  EXPECT_FALSE(port.canAccept(makeFlit(second, 0)));  // tail not yet popped
  port.pop(0, 1);
  EXPECT_TRUE(port.canAccept(makeFlit(second, 0)));
}

TEST(BufferedPort, TwoPacketsUseDistinctVcs) {
  BufferedPort port(2, 4);
  const auto a = makePacket(1, 2);
  const auto b = makePacket(2, 2);
  port.accept(makeFlit(a, 0), 0);
  port.accept(makeFlit(b, 0), 0);
  port.accept(makeFlit(a, 1), 1);
  port.accept(makeFlit(b, 1), 1);
  EXPECT_EQ(port.bank().vc(0).front().packet().id, 1u);
  EXPECT_EQ(port.bank().vc(1).front().packet().id, 2u);
}

TEST(ClusterTopology, PaperConfiguration) {
  ClusterTopology topology;  // defaults: 64 cores, clusters of 4
  EXPECT_EQ(topology.numCores(), 64u);
  EXPECT_EQ(topology.numClusters(), 16u);
  EXPECT_EQ(topology.clusterOf(0), 0u);
  EXPECT_EQ(topology.clusterOf(63), 15u);
  EXPECT_EQ(topology.localIndex(5), 1u);
  EXPECT_EQ(topology.coreAt(15, 3), 63u);
  EXPECT_TRUE(topology.sameCluster(4, 7));
  EXPECT_FALSE(topology.sameCluster(3, 4));
}

TEST(ClusterTopology, CoresInClusterRoundTrip) {
  ClusterTopology topology(12, 3);
  const auto cores = topology.coresInCluster(2);
  ASSERT_EQ(cores.size(), 3u);
  for (const CoreId core : cores) EXPECT_EQ(topology.clusterOf(core), 2u);
}

TEST(ClusterTopology, RejectsInvalidGeometry) {
  EXPECT_THROW(ClusterTopology(10, 4), std::invalid_argument);
  EXPECT_THROW(ClusterTopology(0, 4), std::invalid_argument);
  EXPECT_THROW(ClusterTopology(8, 0), std::invalid_argument);
}

}  // namespace
}  // namespace pnoc::noc

// Tests of the two d-HetPNoC extensions beyond the paper's main design:
//  * the waveguide-restricted variant from the thesis conclusion (router x
//    may only modulate waveguides x .. x+k-1 mod NW), and
//  * wavelength fault injection (a broken MRR's channel is quarantined via
//    the token and traffic continues on the remaining wavelengths).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/dba.hpp"
#include "core/tables.hpp"
#include "core/token.hpp"
#include "network/network.hpp"

namespace pnoc::core {
namespace {

WavelengthTable demandAll(std::uint32_t numClusters, ClusterId self, std::uint32_t lambdas) {
  WavelengthTable table(numClusters);
  for (ClusterId d = 0; d < numClusters; ++d) {
    if (d != self) table.set(d, lambdas);
  }
  return table;
}

/// Set-3-like rig: 512 wavelengths over 8 waveguides, 16 clusters.
struct Rig {
  explicit Rig(std::uint32_t writableWaveguides) : map(8, 64), token(512, 16) {
    DbaConfig config;
    config.maxChannelWavelengths = 64;
    config.reservedPerCluster = 1;
    config.writableWaveguides = writableWaveguides;
    for (ClusterId c = 0; c < 16; ++c) {
      tables.push_back(std::make_unique<RouterTables>(c, 16, 4));
      controllers.push_back(std::make_unique<DbaController>(c, config, *tables[c], map));
    }
  }
  void rotate(Cycle now = 0) {
    for (auto& controller : controllers) controller->onToken(token, now);
  }
  photonic::WavelengthAllocationMap map;
  Token token;
  std::vector<std::unique_ptr<RouterTables>> tables;
  std::vector<std::unique_ptr<DbaController>> controllers;
};

TEST(RestrictedDba, AcquiresOnlyWithinAllowedWaveguides) {
  Rig rig(2);
  rig.tables[3]->updateDemand(0, demandAll(16, 3, 64));
  rig.rotate();
  for (const auto& id : rig.controllers[3]->ownedWavelengths()) {
    if (id == rig.controllers[3]->ownedWavelengths().front()) continue;  // reserved
    EXPECT_TRUE(id.waveguide == 3 || id.waveguide == 4) << "waveguide " << id.waveguide;
  }
  EXPECT_EQ(rig.controllers[3]->ownedCount(), 64u);  // 2 x 64 >= 64 demanded
}

TEST(RestrictedDba, WindowWrapsAroundLastWaveguide) {
  Rig rig(2);
  // Cluster 15 -> first waveguide 15 mod 8 = 7, window {7, 0}.
  rig.tables[15]->updateDemand(0, demandAll(16, 15, 32));
  rig.rotate();
  for (const auto& id : rig.controllers[15]->ownedWavelengths()) {
    if (id == rig.controllers[15]->ownedWavelengths().front()) continue;
    EXPECT_TRUE(id.waveguide == 7 || id.waveguide == 0) << "waveguide " << id.waveguide;
  }
}

TEST(RestrictedDba, SingleWaveguideWindowCapsAcquisition) {
  Rig rig(1);
  rig.tables[2]->updateDemand(0, demandAll(16, 2, 64));
  rig.rotate();
  // Waveguide 2 has 64 lambdas but shares them with other windows; cluster 2
  // can never own more than one waveguide's worth.
  EXPECT_LE(rig.controllers[2]->ownedCount(), 64u);
  for (const auto& id : rig.controllers[2]->ownedWavelengths()) {
    if (id == rig.controllers[2]->ownedWavelengths().front()) continue;
    EXPECT_EQ(id.waveguide, 2u);
  }
}

TEST(RestrictedDba, RestrictionReducesSatisfactionUnderContention) {
  // All clusters demand the cap.  Unrestricted: first-come clusters win big.
  // Restricted to 1 waveguide: each window is contended by ~2 clusters, so
  // allocations are flatter and total satisfaction differs.
  Rig unrestricted(0);
  Rig restricted(1);
  for (ClusterId c = 0; c < 16; ++c) {
    unrestricted.tables[c]->updateDemand(0, demandAll(16, c, 64));
    restricted.tables[c]->updateDemand(0, demandAll(16, c, 64));
  }
  unrestricted.rotate();
  restricted.rotate();
  EXPECT_GT(unrestricted.controllers[0]->ownedCount(),
            restricted.controllers[0]->ownedCount());
}

TEST(FaultInjection, DefectiveDynamicWavelengthIsQuarantined) {
  Rig rig(0);
  rig.tables[0]->updateDemand(0, demandAll(16, 0, 8));
  rig.rotate();
  ASSERT_EQ(rig.controllers[0]->ownedCount(), 8u);
  // Break a dynamically held wavelength of cluster 0.
  const photonic::WavelengthId broken = rig.controllers[0]->ownedWavelengths().back();
  rig.controllers[0]->markDefective(broken);
  rig.rotate();
  // Released from the map, replaced by a healthy one, never re-acquired.
  EXPECT_EQ(rig.controllers[0]->ownedCount(), 8u);
  for (const auto& id : rig.controllers[0]->ownedWavelengths()) {
    EXPECT_NE(id, broken);
  }
  EXPECT_TRUE(rig.map.isFree(broken));
  // Quarantined in the token: still marked allocated there.
  EXPECT_TRUE(rig.token.isAllocated(
      rig.token.tokenBitFor(photonic::flatten(broken, 64))));
}

TEST(FaultInjection, NoClusterEverAcquiresAQuarantinedWavelength) {
  Rig rig(0);
  photonic::WavelengthId broken{1, 7};
  for (auto& controller : rig.controllers) controller->markDefective(broken);
  for (ClusterId c = 0; c < 16; ++c) {
    rig.tables[c]->updateDemand(0, demandAll(16, c, 32));
  }
  for (int round = 0; round < 4; ++round) rig.rotate();
  EXPECT_TRUE(rig.map.isFree(broken));
}

}  // namespace
}  // namespace pnoc::core

namespace pnoc::network {
namespace {

TEST(RestrictedDbaSystem, FullSystemRunsRestricted) {
  SimulationParameters params;
  params.architecture = Architecture::kDhetpnoc;
  params.bandwidthSet = traffic::BandwidthSet::set3();  // 8 data waveguides
  params.pattern = "skewed3";
  params.offeredLoad = 0.004;
  params.writableWaveguides = 2;
  params.warmupCycles = 500;
  params.measureCycles = 3000;
  PhotonicNetwork net(params);
  const auto m = net.run();
  EXPECT_GT(m.packetsDelivered, 100u);
  EXPECT_EQ(net.totalFlitsInjected(), net.totalFlitsEjected() + net.occupancy());
}

TEST(FaultInjectionSystem, TrafficContinuesAfterWavelengthFaults) {
  SimulationParameters params;
  params.architecture = Architecture::kDhetpnoc;
  params.pattern = "skewed3";
  params.offeredLoad = 0.001;
  params.warmupCycles = 200;
  params.measureCycles = 0;
  PhotonicNetwork net(params);
  auto* policy = dynamic_cast<DhetpnocPolicy*>(&net.policy());
  ASSERT_NE(policy, nullptr);
  net.step(500);
  const auto deliveredBefore = net.totalFlitsEjected();
  // Break several dynamically allocatable wavelengths.
  for (std::uint32_t lambda = 20; lambda < 26; ++lambda) {
    policy->injectWavelengthFault({0, lambda});
  }
  net.step(2000);
  EXPECT_GT(net.totalFlitsEjected(), deliveredBefore + 1000u);
  // Safety: ownership + free + (implicitly quarantined) never exceeds total.
  const auto& map = policy->allocationMap();
  std::uint32_t owned = 0;
  for (ClusterId c = 0; c < 16; ++c) owned += map.ownedCount(c);
  EXPECT_LE(owned + map.freeCount(), map.totalWavelengths());
  EXPECT_EQ(net.totalFlitsInjected(), net.totalFlitsEjected() + net.occupancy());
}

}  // namespace
}  // namespace pnoc::network

#include "core/dba.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/tables.hpp"
#include "core/token.hpp"
#include "sim/rng.hpp"

namespace pnoc::core {
namespace {

constexpr std::uint32_t kClusters = 16;
constexpr std::uint32_t kCoresPerCluster = 4;

WavelengthTable uniformDemand(std::uint32_t numClusters, ClusterId self,
                              std::uint32_t lambdas) {
  WavelengthTable table(numClusters);
  for (ClusterId d = 0; d < numClusters; ++d) {
    if (d != self) table.set(d, lambdas);
  }
  return table;
}

TEST(RouterTables, RequestIsElementwiseMaxOfDemands) {
  RouterTables tables(0, 4, 2);
  WavelengthTable demandA(4);
  demandA.set(1, 3);
  demandA.set(2, 1);
  WavelengthTable demandB(4);
  demandB.set(1, 1);
  demandB.set(2, 5);
  tables.updateDemand(0, demandA);
  tables.updateDemand(1, demandB);
  EXPECT_EQ(tables.request().get(1), 3u);
  EXPECT_EQ(tables.request().get(2), 5u);
  EXPECT_EQ(tables.request().get(3), 0u);
  EXPECT_EQ(tables.request().get(0), 0u);  // self entry forced to zero
}

TEST(RouterTables, RequestUpdatesWhenDemandChanges) {
  RouterTables tables(0, 4, 1);
  tables.updateDemand(0, uniformDemand(4, 0, 6));
  EXPECT_EQ(tables.request().maxEntry(), 6u);
  tables.updateDemand(0, uniformDemand(4, 0, 2));
  EXPECT_EQ(tables.request().maxEntry(), 2u);
}

/// A 16-cluster DBA fixture with the paper's set-1 budget: 64 wavelengths,
/// 1 reserved per cluster, per-channel cap 8.
class DbaFixture : public ::testing::Test {
 protected:
  DbaFixture() : map_(1, 64), token_(64, 16) {
    DbaConfig config;
    config.maxChannelWavelengths = 8;
    config.reservedPerCluster = 1;
    for (ClusterId c = 0; c < kClusters; ++c) {
      tables_.push_back(std::make_unique<RouterTables>(c, kClusters, kCoresPerCluster));
      controllers_.push_back(
          std::make_unique<DbaController>(c, config, *tables_[c], map_));
    }
  }

  void setDemand(ClusterId cluster, std::uint32_t lambdas) {
    tables_[cluster]->updateDemand(0, uniformDemand(kClusters, cluster, lambdas));
  }

  /// One full token rotation.
  void rotate() {
    for (auto& controller : controllers_) controller->onToken(token_, 0);
  }

  /// The safety invariant: the map and token agree, and nothing is owned
  /// twice (the map asserts that internally; here we check totals).
  void checkInvariants() {
    std::uint32_t owned = 0;
    for (ClusterId c = 0; c < kClusters; ++c) owned += map_.ownedCount(c);
    EXPECT_EQ(owned + map_.freeCount(), 64u);
    EXPECT_EQ(map_.freeCount(), token_.freeCount());
    for (ClusterId c = 0; c < kClusters; ++c) {
      EXPECT_EQ(controllers_[c]->ownedCount(), map_.ownedCount(c));
      EXPECT_GE(controllers_[c]->ownedCount(), 1u);  // starvation guard
    }
  }

  photonic::WavelengthAllocationMap map_;
  Token token_;
  std::vector<std::unique_ptr<RouterTables>> tables_;
  std::vector<std::unique_ptr<DbaController>> controllers_;
};

TEST_F(DbaFixture, ReservedWavelengthPreallocated) {
  for (ClusterId c = 0; c < kClusters; ++c) {
    EXPECT_EQ(controllers_[c]->ownedCount(), 1u);
    EXPECT_EQ(map_.owner(photonic::unflatten(c, 64)), std::optional<ClusterId>(c));
  }
  checkInvariants();
}

TEST_F(DbaFixture, UniformDemandConvergesToEvenSplit) {
  for (ClusterId c = 0; c < kClusters; ++c) setDemand(c, 4);
  rotate();
  for (ClusterId c = 0; c < kClusters; ++c) {
    EXPECT_EQ(controllers_[c]->ownedCount(), 4u) << "cluster " << c;
    EXPECT_EQ(controllers_[c]->lambdasFor((c + 1) % kClusters), 4u);
  }
  EXPECT_EQ(map_.freeCount(), 0u);  // 16 * 4 = 64, fully allocated
  checkInvariants();
}

TEST_F(DbaFixture, SkewedDemandSatisfiedWithinBudget) {
  // Classes {1,2,4,8} on clusters (c mod 4): total 60 <= 64.
  const std::uint32_t classDemand[4] = {1, 2, 4, 8};
  for (ClusterId c = 0; c < kClusters; ++c) setDemand(c, classDemand[c % 4]);
  rotate();
  for (ClusterId c = 0; c < kClusters; ++c) {
    EXPECT_EQ(controllers_[c]->ownedCount(), classDemand[c % 4]) << "cluster " << c;
    EXPECT_EQ(controllers_[c]->stats().shortfallVisits, 0u);
  }
  EXPECT_EQ(map_.freeCount(), 4u);
  checkInvariants();
}

TEST_F(DbaFixture, CapLimitsAcquisition) {
  setDemand(0, 50);  // far above the per-channel cap of 8
  rotate();
  EXPECT_EQ(controllers_[0]->ownedCount(), 8u);
  checkInvariants();
}

TEST_F(DbaFixture, ReleasesWhenDemandDrops) {
  for (ClusterId c = 0; c < kClusters; ++c) setDemand(c, 4);
  rotate();
  EXPECT_EQ(controllers_[3]->ownedCount(), 4u);
  setDemand(3, 1);
  rotate();
  EXPECT_EQ(controllers_[3]->ownedCount(), 1u);
  EXPECT_GE(controllers_[3]->stats().releases, 3u);
  checkInvariants();
}

TEST_F(DbaFixture, ReleasedWavelengthsBecomeAcquirable) {
  for (ClusterId c = 0; c < kClusters; ++c) setDemand(c, 4);
  rotate();
  EXPECT_EQ(map_.freeCount(), 0u);
  // Cluster 5 shrinks; cluster 2 wants more.  Cluster 2 holds the token
  // BEFORE cluster 5 releases in the same rotation, so it only sees the
  // freed wavelengths one rotation later — exactly the retry behaviour
  // Section 3.2.1 describes (the request table is kept, not cleared).
  setDemand(5, 1);
  setDemand(2, 7);
  rotate();
  EXPECT_EQ(controllers_[5]->ownedCount(), 1u);
  EXPECT_EQ(controllers_[2]->ownedCount(), 4u);  // pool was empty at its turn
  EXPECT_GE(controllers_[2]->stats().shortfallVisits, 1u);
  rotate();
  EXPECT_EQ(controllers_[2]->ownedCount(), 7u);  // satisfied on retry
  checkInvariants();
}

TEST_F(DbaFixture, OversubscriptionRetriesAcrossRotations) {
  // Everyone wants the cap: 16*8 = 128 > 64 available.  The early token
  // holders win; the request table is not cleared, so the shortfall is
  // re-attempted on the next rotation (Section 3.2.1).
  for (ClusterId c = 0; c < kClusters; ++c) setDemand(c, 8);
  rotate();
  std::uint32_t total = 0;
  bool anyShortfall = false;
  for (ClusterId c = 0; c < kClusters; ++c) {
    total += controllers_[c]->ownedCount();
    anyShortfall |= controllers_[c]->stats().shortfallVisits > 0;
  }
  EXPECT_EQ(total, 64u);  // everything allocated
  EXPECT_TRUE(anyShortfall);
  EXPECT_EQ(map_.freeCount(), 0u);
  checkInvariants();
  // A second rotation cannot violate safety.
  rotate();
  checkInvariants();
}

TEST_F(DbaFixture, CurrentTablePerDestinationBounds) {
  // Cluster 0 demands 8 to cluster 1 but only 2 to cluster 2.
  WavelengthTable demand(kClusters);
  demand.set(1, 8);
  demand.set(2, 2);
  tables_[0]->updateDemand(0, demand);
  rotate();
  EXPECT_EQ(controllers_[0]->ownedCount(), 8u);
  EXPECT_EQ(controllers_[0]->lambdasFor(1), 8u);
  EXPECT_EQ(controllers_[0]->lambdasFor(2), 2u);
  // No demand to cluster 3: floor at the reserved minimum, never zero.
  EXPECT_EQ(controllers_[0]->lambdasFor(3), 1u);
}

TEST_F(DbaFixture, OwnedWavelengthsKeepReservedFirst) {
  setDemand(6, 5);
  rotate();
  const auto& owned = controllers_[6]->ownedWavelengths();
  ASSERT_EQ(owned.size(), 5u);
  EXPECT_EQ(owned[0], photonic::unflatten(6, 64));  // the reserved lambda
}

TEST_F(DbaFixture, RandomDemandChurnPreservesInvariants) {
  // Property test: random demand updates and rotations never violate the
  // allocation invariants (no double ownership, token/map agreement, floor).
  sim::Rng rng(99);
  for (int round = 0; round < 200; ++round) {
    const auto cluster = static_cast<ClusterId>(rng.nextBelow(kClusters));
    const auto demand = static_cast<std::uint32_t>(rng.nextBelow(12));  // may exceed cap
    setDemand(cluster, demand);
    controllers_[round % kClusters]->onToken(token_, round);
    checkInvariants();
  }
}

TEST(DbaController, MultiWaveguideAcquisitionSpansWaveguides) {
  // Set-3 geometry: 512 wavelengths over 8 waveguides; demands can exceed a
  // single waveguide's remaining capacity and must spread (Section 3.2.1:
  // "Multiple wavelengths for a particular cluster could be spread over
  // multiple waveguides").
  photonic::WavelengthAllocationMap map(8, 64);
  Token token(512, 16);
  DbaConfig config;
  config.maxChannelWavelengths = 64;
  RouterTables tables(0, 16, 4);
  DbaController controller(0, config, tables, map);
  WavelengthTable demand(16);
  demand.set(1, 64);
  tables.updateDemand(0, demand);
  controller.onToken(token, 0);
  EXPECT_EQ(controller.ownedCount(), 64u);
  bool spansMultiple = false;
  for (const auto& id : controller.ownedWavelengths()) {
    if (id.waveguide != controller.ownedWavelengths().front().waveguide) {
      spansMultiple = true;
      break;
    }
  }
  EXPECT_TRUE(spansMultiple);
}

}  // namespace
}  // namespace pnoc::core

#include "core/token.hpp"

#include <gtest/gtest.h>

#include "core/reservation.hpp"
#include "sim/clock.hpp"

namespace pnoc::core {
namespace {

TEST(Token, SizeMatchesEquationOne) {
  // N_TW = NW * lambda_W - N_lambdaR: 64 total - 16 reserved = 48 for set 1.
  Token token(64, 16);
  EXPECT_EQ(token.sizeBits(), 48u);
  EXPECT_EQ(token.freeCount(), 48u);
  Token token3(512, 16);
  EXPECT_EQ(token3.sizeBits(), 496u);
}

TEST(Token, AllocateFreeRoundTrip) {
  Token token(64, 16);
  token.markAllocated(5);
  EXPECT_TRUE(token.isAllocated(5));
  EXPECT_EQ(token.freeCount(), 47u);
  token.markFree(5);
  EXPECT_FALSE(token.isAllocated(5));
  EXPECT_EQ(token.freeCount(), 48u);
}

TEST(Token, FlatIndexMappingSkipsReserved) {
  Token token(64, 16);
  EXPECT_EQ(token.flatIndexFor(0), 16u);
  EXPECT_EQ(token.flatIndexFor(47), 63u);
  EXPECT_EQ(token.tokenBitFor(16), 0u);
  EXPECT_EQ(token.tokenBitFor(63), 47u);
}

TEST(TokenHop, MatchesEquationTwoTimings) {
  // eq. (2): T_L = N_TW / (lambda_W * B).  The control waveguide moves
  // 64 lambda * 5 bits/cycle = 320 bits per cycle at 2.5 GHz.
  const sim::Clock clock;
  // Set 1: 48 bits -> 60 ps -> 1 cycle.
  EXPECT_EQ(tokenHopCycles(48, 64, clock), 1u);
  // Set 2: 240 bits -> < 1 cycle -> 1 cycle.
  EXPECT_EQ(tokenHopCycles(240, 64, clock), 1u);
  // Set 3: 496 bits -> 620 ps -> 2 cycles.
  EXPECT_EQ(tokenHopCycles(496, 64, clock), 2u);
  // Exactly one channel-cycle of bits stays a single cycle.
  EXPECT_EQ(tokenHopCycles(320, 64, clock), 1u);
  EXPECT_EQ(tokenHopCycles(321, 64, clock), 2u);
}

class CountingClient final : public TokenClient {
 public:
  void onToken(Token&, Cycle now) override {
    ++visits;
    lastVisit = now;
  }
  int visits = 0;
  Cycle lastVisit = 0;
};

TEST(TokenRing, VisitsClientsRoundRobinWithHopLatency) {
  TokenRing ring(Token(64, 16), /*hopLatency=*/2);
  CountingClient a;
  CountingClient b;
  CountingClient c;
  ring.addClient(a);
  ring.addClient(b);
  ring.addClient(c);
  sim::Engine engine;
  engine.add(ring);
  engine.run(12);
  // Arrivals at cycles 0,2,4,6,8,10: a,b,c,a,b,c.
  EXPECT_EQ(a.visits, 2);
  EXPECT_EQ(b.visits, 2);
  EXPECT_EQ(c.visits, 2);
  EXPECT_EQ(ring.rotations(), 2u);
}

TEST(TokenRing, WorstCaseRepossessionIsHopTimesClients) {
  // Section 3.2.1: worst case T_L * N_PR.  With 4 clients and 2-cycle hops a
  // client sees the token every 8 cycles.
  TokenRing ring(Token(64, 16), 2);
  CountingClient clients[4];
  for (auto& client : clients) ring.addClient(client);
  sim::Engine engine;
  engine.add(ring);
  engine.run(1);
  EXPECT_EQ(clients[0].visits, 1);
  engine.run(7);  // cycles 1..7: token at b, c, d
  EXPECT_EQ(clients[0].visits, 1);
  engine.run(1);  // cycle 8: back at a
  EXPECT_EQ(clients[0].visits, 2);
}

TEST(ReservationTiming, IdentifierPayloadBits) {
  // 8 ids * 6 bits = 48 (set 1, single waveguide).
  EXPECT_EQ(identifierPayloadBits(8, 1), 48u);
  // 64 ids * 9 bits = 576 (set 3, 8 waveguides).
  EXPECT_EQ(identifierPayloadBits(64, 8), 576u);
}

TEST(ReservationTiming, MatchesSection3411) {
  const sim::Clock clock;
  // Firefly carries no identifiers: always 1 cycle.
  EXPECT_EQ(reservationCycles(0, 1, 64, clock), 1u);
  EXPECT_EQ(reservationCycles(0, 8, 64, clock), 1u);
  // BW set 1: 48 bits over 320 bits/cycle -> 60 ps -> 1 cycle.
  EXPECT_EQ(reservationCycles(8, 1, 64, clock), 1u);
  // BW set 3: 576 bits -> 720 ps -> 2 cycles.
  EXPECT_EQ(reservationCycles(64, 8, 64, clock), 2u);
  // BW set 2: 32 ids * 8 bits = 256 bits -> 1 cycle.
  EXPECT_EQ(reservationCycles(32, 4, 64, clock), 1u);
}

}  // namespace
}  // namespace pnoc::core

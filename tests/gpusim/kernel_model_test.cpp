#include "gpusim/kernel_model.hpp"

#include <gtest/gtest.h>

namespace pnoc::gpusim {
namespace {

TEST(KernelModel, RosterContainsSection342Benchmarks) {
  for (const std::string name : {"MUM", "BFS", "CP", "RAY", "LPS"}) {
    EXPECT_NO_THROW(benchmarkByName(name)) << name;
  }
  EXPECT_THROW(benchmarkByName("nosuch"), std::invalid_argument);
}

TEST(KernelModel, RosterMixesCudaSdkAndRodinia) {
  int sdk = 0;
  int rodinia = 0;
  for (const auto& kernel : benchmarkRoster()) {
    (kernel.fromCudaSdk ? sdk : rodinia) += 1;
  }
  EXPECT_GE(sdk, 5);
  EXPECT_GE(rodinia, 5);
}

TEST(KernelModel, Fig11ShapeBandwidthBoundGainTens) {
  // "a few of the benchmarks show considerable speedup of up to 63%".
  const double bfs = GpuKernelModel::speedup(benchmarkByName("BFS"), 1024);
  EXPECT_GT(bfs, 1.3);
  EXPECT_LT(bfs, 1.75);
  const double mum = GpuKernelModel::speedup(benchmarkByName("MUM"), 1024);
  EXPECT_GT(mum, 1.2);
  EXPECT_LT(mum, bfs);  // BFS is the biggest winner in the figure
}

TEST(KernelModel, Fig11ShapeComputeBoundGainUnderOnePercent) {
  // "most of the benchmarks show very modest performance improvement of less
  // than below 1%".
  int modest = 0;
  for (const auto& kernel : benchmarkRoster()) {
    const double speedup = GpuKernelModel::speedup(kernel, 1024);
    EXPECT_GE(speedup, 1.0) << kernel.name << ": wider flits can never hurt";
    if (speedup < 1.01) ++modest;
  }
  EXPECT_GE(modest, static_cast<int>(benchmarkRoster().size()) - 4);
}

class FlitSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(FlitSweep, SpeedupMonotoneInFlitSize) {
  const auto kernel = benchmarkByName("BFS");
  const std::uint32_t flit = GetParam();
  EXPECT_GE(GpuKernelModel::speedup(kernel, flit * 2),
            GpuKernelModel::speedup(kernel, flit));
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, FlitSweep,
                         ::testing::Values(32u, 64u, 128u, 256u, 512u));

TEST(KernelModel, BaselineSpeedupIsOne) {
  for (const auto& kernel : benchmarkRoster()) {
    EXPECT_DOUBLE_EQ(GpuKernelModel::speedup(kernel, 32), 1.0) << kernel.name;
  }
}

TEST(KernelModel, AchievedBandwidthOrdersByMemoryIntensity) {
  InterconnectParams icnt;
  icnt.flitBytes = 128;  // Section 3.4.2 profiling configuration
  const double bfs = GpuKernelModel::achievedBandwidthGbps(benchmarkByName("BFS"), icnt);
  const double mum = GpuKernelModel::achievedBandwidthGbps(benchmarkByName("MUM"), icnt);
  const double cp = GpuKernelModel::achievedBandwidthGbps(benchmarkByName("CP"), icnt);
  const double ray = GpuKernelModel::achievedBandwidthGbps(benchmarkByName("RAY"), icnt);
  EXPECT_GT(bfs, 5.0 * cp);
  EXPECT_GT(mum, 5.0 * ray);
  EXPECT_GT(cp, 1.0);  // even compute-bound kernels touch memory
}

TEST(KernelModel, RuntimeScalesWithIterationsAndLaunches) {
  KernelParams kernel = benchmarkByName("CP");
  InterconnectParams icnt;
  const double base = GpuKernelModel::runtimeCycles(kernel, icnt);
  kernel.iterations *= 2;
  EXPECT_DOUBLE_EQ(GpuKernelModel::runtimeCycles(kernel, icnt), 2.0 * base);
  kernel.kernelLaunches *= 3;
  EXPECT_DOUBLE_EQ(GpuKernelModel::runtimeCycles(kernel, icnt), 6.0 * base);
}

TEST(KernelModel, LatencyBoundKernelIgnoresBandwidth) {
  KernelParams kernel;
  kernel.computeCyclesPerIteration = 1.0;
  kernel.memoryBytesPerIteration = 12800.0;
  kernel.requestBytes = 128;   // 100 requests
  kernel.memoryLatencyCycles = 400.0;
  kernel.maxOutstandingRequests = 1;  // fully serialized: 40000 cycles floor
  InterconnectParams narrow;
  narrow.flitBytes = 32;
  InterconnectParams wide;
  wide.flitBytes = 1024;
  const double tNarrow = GpuKernelModel::runtimeCycles(kernel, narrow);
  const double tWide = GpuKernelModel::runtimeCycles(kernel, wide);
  EXPECT_NEAR(tNarrow / tWide, 1.0, 0.02);
}

TEST(KernelModel, RejectsFlitSmallerThanHeader) {
  InterconnectParams icnt;
  icnt.flitBytes = 8;  // equals the header: no payload
  EXPECT_THROW(icnt.payloadBytesPerCycle(), std::invalid_argument);
}

}  // namespace
}  // namespace pnoc::gpusim

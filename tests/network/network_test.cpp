#include "network/network.hpp"

#include <gtest/gtest.h>

#include "network/channel_policy.hpp"

namespace pnoc::network {
namespace {

SimulationParameters baseParams() {
  SimulationParameters params;
  params.pattern = "uniform";
  params.offeredLoad = 0.0005;  // comfortably below saturation
  params.warmupCycles = 500;
  params.measureCycles = 3000;
  params.seed = 12345;
  return params;
}

TEST(Params, DefaultsValidate) {
  EXPECT_NO_THROW(baseParams().validate());
}

TEST(Params, RejectsBadGeometry) {
  auto params = baseParams();
  params.numCores = 10;
  EXPECT_THROW(params.validate(), std::invalid_argument);
}

TEST(Params, RejectsZeroReserved) {
  auto params = baseParams();
  params.reservedPerCluster = 0;
  EXPECT_THROW(params.validate(), std::invalid_argument);
}

TEST(Params, RejectsReservedOverBudget) {
  auto params = baseParams();
  params.reservedPerCluster = 5;  // 5 * 16 = 80 > 64
  EXPECT_THROW(params.validate(), std::invalid_argument);
}

TEST(Params, RejectsVcShallowerThanPacket) {
  auto params = baseParams();
  params.coreRouter.vcDepthFlits = 32;  // packet is 64 flits in set 1
  EXPECT_THROW(PhotonicNetwork net(params), std::invalid_argument);
}

TEST(Params, RejectsVcCountsOutsideMaskRange) {
  // VC occupancy / head-front / lock / bound-core state is kept in 32-bit
  // masks; a 33rd VC would shift out of range (UB), so validate() must refuse
  // it before any bank is constructed.
  auto params = baseParams();
  params.coreRouter.vcsPerPort = 33;
  EXPECT_THROW(params.validate(), std::invalid_argument);
  EXPECT_THROW(PhotonicNetwork net(params), std::invalid_argument);
  params.coreRouter.vcsPerPort = 0;
  EXPECT_THROW(params.validate(), std::invalid_argument);
}

TEST(Params, AcceptsFullMaskWidthVcCount) {
  // 32 VCs exactly fills the mask (`~0u`), the widest legal configuration.
  auto params = baseParams();
  params.coreRouter.vcsPerPort = 32;
  EXPECT_NO_THROW(params.validate());
  PhotonicNetwork net(params);
  net.step(200);
}

TEST(FireflyPolicy, StaticEvenSplit) {
  noc::ClusterTopology topology;
  FireflyPolicy policy(topology, traffic::BandwidthSet::set1());
  EXPECT_EQ(policy.lambdasFor(0, 1), 4u);
  EXPECT_EQ(policy.lambdasFor(9, 2), 4u);
  EXPECT_EQ(policy.maxReservationIdentifiers(), 0u);
  EXPECT_EQ(policy.numDataWaveguides(), 16u);  // one write waveguide per cluster
  const auto ids = policy.wavelengthsFor(3, 7);
  ASSERT_EQ(ids.size(), 4u);
  EXPECT_EQ(ids[0].waveguide, 3u);  // its own waveguide
}

TEST(DhetpnocPolicy, ConvergesToDemandAfterRotations) {
  noc::ClusterTopology topology;
  const auto set = traffic::BandwidthSet::set1();
  const auto pattern = traffic::makePattern("skewed3", topology, set);
  DhetpnocPolicy policy(topology, set, *pattern, sim::Clock(), 1);
  sim::Engine engine;
  policy.attachTo(engine);
  engine.run(64);  // several full token rotations (16 hops x 1 cycle each)
  // Clusters converge to their class demands {1,2,4,8}.
  EXPECT_EQ(policy.lambdasFor(3, 0), 8u);
  EXPECT_EQ(policy.lambdasFor(2, 0), 4u);
  EXPECT_EQ(policy.lambdasFor(1, 0), 2u);
  EXPECT_EQ(policy.lambdasFor(0, 1), 1u);
  // Identifiers for a transfer match the current table.
  EXPECT_EQ(policy.wavelengthsFor(3, 0).size(), 8u);
}

TEST(DhetpnocPolicy, UniformMatchesFireflyAllocation) {
  noc::ClusterTopology topology;
  const auto set = traffic::BandwidthSet::set1();
  const auto pattern = traffic::makePattern("uniform", topology, set);
  DhetpnocPolicy policy(topology, set, *pattern, sim::Clock(), 1);
  FireflyPolicy firefly(topology, set);
  sim::Engine engine;
  policy.attachTo(engine);
  engine.run(64);
  for (ClusterId src = 0; src < 16; ++src) {
    const ClusterId dst = (src + 1) % 16;
    EXPECT_EQ(policy.lambdasFor(src, dst), firefly.lambdasFor(src, dst));
  }
}

TEST(Network, DeliversEverythingAtLowLoad) {
  auto params = baseParams();
  PhotonicNetwork net(params);
  const metrics::RunMetrics m = net.run();
  EXPECT_GT(m.packetsDelivered, 50u);
  EXPECT_GT(m.acceptance(), 0.95);
  EXPECT_EQ(m.packetsRefused, 0u);
}

TEST(Network, DeterministicAcrossRuns) {
  auto params = baseParams();
  params.pattern = "skewed2";
  PhotonicNetwork a(params);
  PhotonicNetwork b(params);
  const auto ma = a.run();
  const auto mb = b.run();
  EXPECT_EQ(ma.packetsDelivered, mb.packetsDelivered);
  EXPECT_EQ(ma.bitsDelivered, mb.bitsDelivered);
  EXPECT_EQ(ma.latencyCyclesSum, mb.latencyCyclesSum);
  EXPECT_DOUBLE_EQ(ma.ledger.total(), mb.ledger.total());
}

TEST(Network, SeedChangesTheRun) {
  auto params = baseParams();
  PhotonicNetwork a(params);
  params.seed = 999;
  PhotonicNetwork b(params);
  EXPECT_NE(a.run().packetsDelivered, b.run().packetsDelivered);
}

TEST(Network, FlitConservationAfterDrain) {
  // Stop offering traffic and drain: everything generated must either be
  // delivered or still counted buffered (here: drained to zero).
  auto params = baseParams();
  params.measureCycles = 2000;
  PhotonicNetwork net(params);
  net.run();
  // Freeze injection by stepping well past the run; queued offers continue,
  // so instead assert occupancy is bounded by what was generated and that
  // the network keeps making progress.
  const auto before = net.occupancy();
  net.step(3000);
  EXPECT_LE(net.occupancy(), before + 64 * 8 * 64);  // bounded by queue capacity
}

TEST(Network, IntraClusterTrafficBypassesPhotonics) {
  // With all traffic inside cluster 0 (cores 0..3), the photonic routers must
  // see nothing.  Build via a custom pattern through params: use uniform but
  // a 4-core chip with a single cluster is invalid for photonics (needs >= 2
  // clusters); instead run the full chip and check conservation of photonic
  // vs electrical delivery on a uniform run.
  auto params = baseParams();
  PhotonicNetwork net(params);
  const auto m = net.run();
  std::uint64_t photonicTx = 0;
  for (ClusterId c = 0; c < net.topology().numClusters(); ++c) {
    photonicTx += net.photonicRouter(c).stats().packetsTransmitted;
  }
  // Uniform traffic: 60/63 of destinations are inter-cluster.
  EXPECT_GT(photonicTx, m.packetsDelivered / 2);
  EXPECT_LT(photonicTx, m.packetsDelivered + 64u);  // intra-cluster not photonic
}

TEST(Network, EnergyLedgerHasAllComponents) {
  auto params = baseParams();
  PhotonicNetwork net(params);
  const auto m = net.run();
  using photonic::EnergyCategory;
  EXPECT_GT(m.ledger.of(EnergyCategory::kLaunch), 0.0);
  EXPECT_GT(m.ledger.of(EnergyCategory::kModulation), 0.0);
  EXPECT_GT(m.ledger.of(EnergyCategory::kTuning), 0.0);
  EXPECT_GT(m.ledger.of(EnergyCategory::kPhotonicBuffer), 0.0);
  EXPECT_GT(m.ledger.of(EnergyCategory::kElectricalRouter), 0.0);
  EXPECT_GT(m.ledger.of(EnergyCategory::kElectricalLink), 0.0);
  EXPECT_NEAR(m.ledger.total(), m.ledger.photonic() + m.ledger.electrical(), 1e-6);
}

TEST(Network, LatencyIncludesSerializationFloor) {
  // Even unloaded, an inter-cluster packet needs at least
  // packetBits / (lambdas * 5) cycles of serialization; uniform set 1 gives
  // 2048 / 20 = 102.4 cycles, so the average must exceed that.
  auto params = baseParams();
  params.offeredLoad = 0.0001;
  PhotonicNetwork net(params);
  const auto m = net.run();
  ASSERT_GT(m.packetsDelivered, 10u);
  EXPECT_GT(m.avgLatencyCycles(), 100.0);
  EXPECT_LT(m.avgLatencyCycles(), 400.0);  // but not pathological
}

TEST(Network, RunIsRepeatable) {
  // A second run() (without reset) is a well-defined continuation: another
  // warmup+measure episode over the live network.  Conservation must hold
  // across episodes and the second window still delivers traffic.
  PhotonicNetwork net(baseParams());
  const auto first = net.run();
  const auto second = net.run();
  EXPECT_GT(first.packetsDelivered, 0u);
  EXPECT_GT(second.packetsDelivered, 0u);
  EXPECT_EQ(net.totalFlitsInjected(), net.totalFlitsEjected() + net.occupancy());
}

TEST(Network, SetOfferedLoadRetargetsInjectors) {
  auto params = baseParams();
  PhotonicNetwork net(params);
  const auto low = net.run();
  net.setOfferedLoad(params.offeredLoad * 8.0);
  net.reset();
  const auto high = net.run();
  EXPECT_GT(high.packetsOffered, low.packetsOffered * 4);
}

class BandwidthSetSweep : public ::testing::TestWithParam<int> {};

TEST_P(BandwidthSetSweep, AllSetsDeliverUnderBothArchitectures) {
  for (const auto arch : {Architecture::kFirefly, Architecture::kDhetpnoc}) {
    auto params = baseParams();
    params.architecture = arch;
    params.bandwidthSet = traffic::BandwidthSet::byIndex(GetParam());
    params.pattern = "skewed2";
    PhotonicNetwork net(params);
    const auto m = net.run();
    EXPECT_GT(m.packetsDelivered, 10u)
        << toString(arch) << " " << params.bandwidthSet.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Sets, BandwidthSetSweep, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace pnoc::network

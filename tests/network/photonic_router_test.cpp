// Unit tests of the PhotonicRouter in isolation: a two-cluster rig with a
// stub channel policy, checking reservation flow control, serialization rate,
// receive-VC exhaustion (drop-and-retransmit) and ejection.
#include "network/photonic_router.hpp"

#include <gtest/gtest.h>

#include "network/channel_policy.hpp"
#include "noc/packet_slab.hpp"
#include "sim/engine.hpp"

namespace pnoc::network {
namespace {

/// Grants a fixed wavelength count to every pair.
class StubPolicy final : public ChannelPolicy {
 public:
  explicit StubPolicy(std::uint32_t lambdas) : lambdas_(lambdas) {}
  std::string name() const override { return "stub"; }
  std::uint32_t lambdasFor(ClusterId, ClusterId) const override { return lambdas_; }
  std::vector<photonic::WavelengthId> wavelengthsFor(ClusterId,
                                                     ClusterId) const override {
    std::vector<photonic::WavelengthId> ids;
    for (std::uint32_t l = 0; l < lambdas_; ++l) ids.push_back({0, l});
    return ids;
  }
  std::uint32_t maxReservationIdentifiers() const override { return lambdas_; }
  std::uint32_t numDataWaveguides() const override { return 1; }
  std::uint32_t lambdas_;
};

class CountingSink final : public noc::FlitSink {
 public:
  bool canAccept(const noc::Flit&) const override { return !blocked; }
  void accept(const noc::Flit& flit, Cycle now) override {
    flits.push_back(flit);
    lastArrival = now;
  }
  bool blocked = false;
  std::vector<noc::Flit> flits;
  Cycle lastArrival = 0;
};

PhotonicRouterConfig smallConfig(ClusterId cluster) {
  PhotonicRouterConfig config;
  config.cluster = cluster;
  config.clusterSize = 4;
  config.vcsPerPort = 2;  // small so exhaustion is easy to trigger
  config.vcDepthFlits = 8;
  config.flitBits = 32;
  config.packetFlits = 8;  // 256-bit packets for fast tests
  return config;
}

/// Descriptors live in a test-local slab so flit handles stay valid for the
/// whole test (as the network's per-run slab guarantees in production).
noc::PacketHandle interPacket(PacketId id, ClusterId srcCluster, CoreId dstCore) {
  static noc::PacketSlab slab;
  noc::PacketDescriptor packet;
  packet.id = id;
  packet.srcCluster = srcCluster;
  packet.dstCore = dstCore;
  packet.dstCluster = dstCore / 4;
  packet.numFlits = 8;
  packet.bitsPerFlit = 32;
  return slab.intern(packet);
}

class PhotonicRouterTest : public ::testing::Test {
 protected:
  PhotonicRouterTest()
      : policy(4),
        source("p0", smallConfig(0), policy),
        destination("p1", smallConfig(1), policy) {
    source.setPeers({&source, &destination});
    destination.setPeers({&source, &destination});
    for (std::uint32_t i = 0; i < 4; ++i) {
      source.connectEjection(i, sourceSinks[i]);
      destination.connectEjection(i, destinationSinks[i]);
    }
    engine.add(source);
    engine.add(destination);
  }

  void inject(noc::PacketHandle packet, std::uint32_t port = 0) {
    for (std::uint32_t i = 0; i < packet->numFlits; ++i) {
      const noc::Flit flit = noc::makeFlit(packet, i);
      ASSERT_TRUE(source.inputPort(port).canAccept(flit));
      source.inputPort(port).accept(flit, engine.now());
    }
  }

  StubPolicy policy;
  PhotonicRouter source;
  PhotonicRouter destination;
  CountingSink sourceSinks[4];
  CountingSink destinationSinks[4];
  sim::Engine engine;
};

TEST_F(PhotonicRouterTest, DeliversPacketToDestinationCoreSink) {
  inject(interPacket(1, 0, 6));  // cluster 1, local core 2
  engine.run(40);
  EXPECT_EQ(destinationSinks[2].flits.size(), 8u);
  EXPECT_EQ(destinationSinks[0].flits.size(), 0u);
  EXPECT_EQ(source.stats().packetsTransmitted, 1u);
  EXPECT_EQ(source.stats().bitsTransmitted, 256u);
}

TEST_F(PhotonicRouterTest, SerializationMatchesChannelWidth) {
  // 4 lambdas * 5 bits/cycle = 20 bits/cycle; a 256-bit packet needs
  // ceil(256/20) = 13 streaming cycles plus reservation + propagation.
  inject(interPacket(1, 0, 4));
  engine.run(40);
  ASSERT_EQ(destinationSinks[0].flits.size(), 8u);
  EXPECT_GE(destinationSinks[0].lastArrival, 13u);
  EXPECT_LE(destinationSinks[0].lastArrival, 20u);
}

TEST_F(PhotonicRouterTest, WiderChannelIsFaster) {
  CountingSink narrowSink;
  Cycle narrowDone = 0;
  {
    inject(interPacket(1, 0, 4));
    engine.run(40);
    narrowDone = destinationSinks[0].lastArrival;
  }
  // Fresh rig with 8 lambdas.
  StubPolicy widePolicy(8);
  PhotonicRouter wideSource("w0", smallConfig(0), widePolicy);
  PhotonicRouter wideDestination("w1", smallConfig(1), widePolicy);
  wideSource.setPeers({&wideSource, &wideDestination});
  wideDestination.setPeers({&wideSource, &wideDestination});
  CountingSink wideSinks[4];
  for (std::uint32_t i = 0; i < 4; ++i) wideDestination.connectEjection(i, wideSinks[i]);
  for (std::uint32_t i = 0; i < 4; ++i) wideSource.connectEjection(i, narrowSink);
  sim::Engine wideEngine;
  wideEngine.add(wideSource);
  wideEngine.add(wideDestination);
  const auto packet = interPacket(1, 0, 4);
  for (std::uint32_t i = 0; i < packet->numFlits; ++i) {
    wideSource.inputPort(0).accept(noc::makeFlit(packet, i), 0);
  }
  wideEngine.run(40);
  ASSERT_EQ(wideSinks[0].flits.size(), 8u);
  EXPECT_LT(wideSinks[0].lastArrival, narrowDone);
}

TEST_F(PhotonicRouterTest, ReceiveVcExhaustionFailsReservation) {
  // Block ejection so receive VCs stay occupied; with 2 VCs the third packet
  // cannot reserve and the source counts failures (drop-and-retransmit).
  for (auto& sink : destinationSinks) sink.blocked = true;
  inject(interPacket(1, 0, 4), 0);
  inject(interPacket(2, 0, 5), 1);
  inject(interPacket(3, 0, 6), 2);
  engine.run(60);
  EXPECT_GT(source.stats().reservationFailures, 0u);
  EXPECT_EQ(source.stats().packetsTransmitted, 2u);
  // Unblock: the third packet goes through on retry.
  for (auto& sink : destinationSinks) sink.blocked = false;
  engine.run(60);
  EXPECT_EQ(source.stats().packetsTransmitted, 3u);
}

TEST_F(PhotonicRouterTest, OneTransmissionAtATimePerWriteChannel) {
  inject(interPacket(1, 0, 4), 0);
  inject(interPacket(2, 0, 5), 1);
  engine.run(14);  // enough for packet 1 (13 cycles) but not both
  const auto transmitted = source.stats().packetsTransmitted;
  EXPECT_LE(transmitted, 1u);
  engine.run(40);
  EXPECT_EQ(source.stats().packetsTransmitted, 2u);
}

TEST_F(PhotonicRouterTest, EjectionRoundRobinsAcrossConcurrentReceives) {
  // Two packets for the same destination core from different input ports:
  // both reserve receive VCs, ejection serves one flit per cycle.
  inject(interPacket(1, 0, 4), 0);
  inject(interPacket(2, 0, 4), 1);
  engine.run(80);
  EXPECT_EQ(destinationSinks[0].flits.size(), 16u);
}

/// Ejection sink with wake-on-drain support, like the production down links:
/// a stalled router may park and is re-woken when the sink frees up.
class NotifyingSink final : public noc::FlitSink {
 public:
  bool canAccept(const noc::Flit&) const override { return !blocked; }
  void accept(const noc::Flit& flit, Cycle) override { flits.push_back(flit); }
  bool notifyOnDrain(sim::Clocked& waiter) override {
    waiter_ = &waiter;
    return true;
  }
  void unblock() {
    blocked = false;
    if (waiter_ != nullptr) {
      waiter_->requestWake();
      waiter_ = nullptr;
    }
  }
  bool blocked = false;
  std::vector<noc::Flit> flits;

 private:
  sim::Clocked* waiter_ = nullptr;
};

/// Sets an environment variable for the lifetime of one test body.
class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    ::setenv(name, value, 1);
  }
  ~EnvGuard() { ::unsetenv(name_); }

 private:
  const char* name_;
};

/// A minimal two-router rig built per test (unlike the fixture, construction
/// happens inside the test body so EnvGuard hooks are visible to it).
struct Rig {
  explicit Rig(bool gating) : policy(4), source("p0", smallConfig(0), policy),
                              destination("p1", smallConfig(1), policy) {
    source.setPeers({&source, &destination});
    destination.setPeers({&source, &destination});
    for (std::uint32_t i = 0; i < 4; ++i) destination.connectEjection(i, sinks[i]);
    engine.setActivityGating(gating);
    engine.add(source);
    engine.add(destination);
  }
  void inject(noc::PacketHandle packet, std::uint32_t flits, std::uint32_t first = 0) {
    for (std::uint32_t i = first; i < first + flits; ++i) {
      source.inputPort(0).accept(noc::makeFlit(packet, i), engine.now());
    }
  }
  StubPolicy policy;
  PhotonicRouter source;
  PhotonicRouter destination;
  NotifyingSink sinks[4];
  sim::Engine engine;
};

bool statsEqual(const PhotonicRouterStats& a, const PhotonicRouterStats& b) {
  return a.reservationsIssued == b.reservationsIssued &&
         a.reservationFailures == b.reservationFailures &&
         a.packetsTransmitted == b.packetsTransmitted &&
         a.bitsTransmitted == b.bitsTransmitted &&
         a.transmitBusyCycles == b.transmitBusyCycles &&
         a.reservationCyclesSpent == b.reservationCyclesSpent;
}

TEST(PhotonicParking, FullDownLinkStallParksUntilDrainNotify) {
  // Every down link at the destination is blocked: after transmission the
  // received flits cannot eject.  With notifyOnDrain-capable sinks both
  // routers must park (zero engine work) until the sink wakes them.
  Rig rig(true);
  for (auto& sink : rig.sinks) sink.blocked = true;
  rig.inject(interPacket(40, 0, 4), 8);
  rig.engine.run(60);
  EXPECT_EQ(rig.sinks[0].flits.size(), 0u);
  EXPECT_TRUE(rig.source.quiescent());
  EXPECT_TRUE(rig.destination.quiescent());
  const std::uint64_t stepsBefore = rig.engine.stats().componentSteps;
  const PhotonicRouterStats frozen = rig.destination.stats();
  rig.engine.run(50);
  EXPECT_EQ(rig.engine.stats().componentSteps, stepsBefore)
      << "a fully stalled rig must burn no engine work";
  EXPECT_TRUE(statsEqual(rig.destination.stats(), frozen))
      << "blocked polled cycles touch no counters";
  rig.sinks[0].unblock();
  rig.engine.run(60);
  EXPECT_EQ(rig.sinks[0].flits.size(), 8u);
}

TEST(PhotonicParking, DenyHookStormReplaysRetryStatsExactly) {
  // A reservation-failure storm via the test fault hook: cluster 1 refuses
  // every reservation until cycle 120.  The gated source parks between
  // retries; its replayed issue/failure counts must match the poll-mode rig
  // bit for bit, and the packet must still arrive after the deny expires.
  EnvGuard deny("PNOC_TEST_PHOTONIC", "deny@1:until=120");
  Rig gated(true);
  Rig polled(false);
  gated.inject(interPacket(41, 0, 4), 8);
  polled.inject(interPacket(41, 0, 4), 8);
  gated.engine.run(200);
  polled.engine.run(200);
  EXPECT_GT(gated.source.stats().reservationFailures, 20u) << "storm never happened";
  EXPECT_EQ(gated.sinks[0].flits.size(), 8u);
  EXPECT_EQ(polled.sinks[0].flits.size(), 8u);
  EXPECT_TRUE(statsEqual(gated.source.stats(), polled.source.stats()));
  EXPECT_TRUE(statsEqual(gated.destination.stats(), polled.destination.stats()));
  EXPECT_LT(gated.engine.stats().componentSteps, polled.engine.stats().componentSteps)
      << "the gated source should park through the deny window, not poll it";
}

TEST(PhotonicParking, WormholeBubbleReplaysBusyCyclesExactly) {
  // Start an 8-flit transmission with only 2 flits buffered: the channel
  // drains ahead of the feeder and the transmission bubbles mid-packet.
  // The gated router parks through the bubble (burning replayed busy
  // cycles); topping up the ingress wakes it via the owner hook.
  Rig gated(true);
  Rig polled(false);
  const auto packet = interPacket(42, 0, 4);
  gated.inject(packet, 2);
  polled.inject(packet, 2);
  gated.engine.run(30);
  polled.engine.run(30);
  EXPECT_LT(gated.sinks[0].flits.size(), 8u) << "packet cannot finish on 2 flits";
  gated.inject(packet, 6, 2);
  polled.inject(packet, 6, 2);
  gated.engine.run(60);
  polled.engine.run(60);
  EXPECT_EQ(gated.sinks[0].flits.size(), 8u);
  EXPECT_EQ(polled.sinks[0].flits.size(), 8u);
  ASSERT_TRUE(statsEqual(gated.source.stats(), polled.source.stats()));
  // ~13 streaming cycles suffice for a 256-bit packet at 20 bits/cycle; the
  // bubble must have held the channel busy well beyond that.
  EXPECT_GT(gated.source.stats().transmitBusyCycles, 20u) << "no bubble occurred";
}

TEST_F(PhotonicRouterTest, ChargesPhotonicEnergyPerBit) {
  inject(interPacket(1, 0, 4));
  engine.run(40);
  // 256 data bits at 0.43 pJ/bit (launch+mod+tuning) plus the reservation
  // flit's bits.
  const double dataOnly = 256 * 0.43;
  EXPECT_GT(source.transferLedger().total(), dataOnly - 1e-9);
  EXPECT_LT(source.transferLedger().total(), dataOnly * 1.3);
}

}  // namespace
}  // namespace pnoc::network

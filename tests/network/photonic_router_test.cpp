// Unit tests of the PhotonicRouter in isolation: a two-cluster rig with a
// stub channel policy, checking reservation flow control, serialization rate,
// receive-VC exhaustion (drop-and-retransmit) and ejection.
#include "network/photonic_router.hpp"

#include <gtest/gtest.h>

#include "network/channel_policy.hpp"
#include "noc/packet_slab.hpp"
#include "sim/engine.hpp"

namespace pnoc::network {
namespace {

/// Grants a fixed wavelength count to every pair.
class StubPolicy final : public ChannelPolicy {
 public:
  explicit StubPolicy(std::uint32_t lambdas) : lambdas_(lambdas) {}
  std::string name() const override { return "stub"; }
  std::uint32_t lambdasFor(ClusterId, ClusterId) const override { return lambdas_; }
  std::vector<photonic::WavelengthId> wavelengthsFor(ClusterId,
                                                     ClusterId) const override {
    std::vector<photonic::WavelengthId> ids;
    for (std::uint32_t l = 0; l < lambdas_; ++l) ids.push_back({0, l});
    return ids;
  }
  std::uint32_t maxReservationIdentifiers() const override { return lambdas_; }
  std::uint32_t numDataWaveguides() const override { return 1; }
  std::uint32_t lambdas_;
};

class CountingSink final : public noc::FlitSink {
 public:
  bool canAccept(const noc::Flit&) const override { return !blocked; }
  void accept(const noc::Flit& flit, Cycle now) override {
    flits.push_back(flit);
    lastArrival = now;
  }
  bool blocked = false;
  std::vector<noc::Flit> flits;
  Cycle lastArrival = 0;
};

PhotonicRouterConfig smallConfig(ClusterId cluster) {
  PhotonicRouterConfig config;
  config.cluster = cluster;
  config.clusterSize = 4;
  config.vcsPerPort = 2;  // small so exhaustion is easy to trigger
  config.vcDepthFlits = 8;
  config.flitBits = 32;
  config.packetFlits = 8;  // 256-bit packets for fast tests
  return config;
}

/// Descriptors live in a test-local slab so flit handles stay valid for the
/// whole test (as the network's per-run slab guarantees in production).
noc::PacketHandle interPacket(PacketId id, ClusterId srcCluster, CoreId dstCore) {
  static noc::PacketSlab slab;
  noc::PacketDescriptor packet;
  packet.id = id;
  packet.srcCluster = srcCluster;
  packet.dstCore = dstCore;
  packet.dstCluster = dstCore / 4;
  packet.numFlits = 8;
  packet.bitsPerFlit = 32;
  return slab.intern(packet);
}

class PhotonicRouterTest : public ::testing::Test {
 protected:
  PhotonicRouterTest()
      : policy(4),
        source("p0", smallConfig(0), policy),
        destination("p1", smallConfig(1), policy) {
    source.setPeers({&source, &destination});
    destination.setPeers({&source, &destination});
    for (std::uint32_t i = 0; i < 4; ++i) {
      source.connectEjection(i, sourceSinks[i]);
      destination.connectEjection(i, destinationSinks[i]);
    }
    engine.add(source);
    engine.add(destination);
  }

  void inject(noc::PacketHandle packet, std::uint32_t port = 0) {
    for (std::uint32_t i = 0; i < packet->numFlits; ++i) {
      const noc::Flit flit = noc::makeFlit(packet, i);
      ASSERT_TRUE(source.inputPort(port).canAccept(flit));
      source.inputPort(port).accept(flit, engine.now());
    }
  }

  StubPolicy policy;
  PhotonicRouter source;
  PhotonicRouter destination;
  CountingSink sourceSinks[4];
  CountingSink destinationSinks[4];
  sim::Engine engine;
};

TEST_F(PhotonicRouterTest, DeliversPacketToDestinationCoreSink) {
  inject(interPacket(1, 0, 6));  // cluster 1, local core 2
  engine.run(40);
  EXPECT_EQ(destinationSinks[2].flits.size(), 8u);
  EXPECT_EQ(destinationSinks[0].flits.size(), 0u);
  EXPECT_EQ(source.stats().packetsTransmitted, 1u);
  EXPECT_EQ(source.stats().bitsTransmitted, 256u);
}

TEST_F(PhotonicRouterTest, SerializationMatchesChannelWidth) {
  // 4 lambdas * 5 bits/cycle = 20 bits/cycle; a 256-bit packet needs
  // ceil(256/20) = 13 streaming cycles plus reservation + propagation.
  inject(interPacket(1, 0, 4));
  engine.run(40);
  ASSERT_EQ(destinationSinks[0].flits.size(), 8u);
  EXPECT_GE(destinationSinks[0].lastArrival, 13u);
  EXPECT_LE(destinationSinks[0].lastArrival, 20u);
}

TEST_F(PhotonicRouterTest, WiderChannelIsFaster) {
  CountingSink narrowSink;
  Cycle narrowDone = 0;
  {
    inject(interPacket(1, 0, 4));
    engine.run(40);
    narrowDone = destinationSinks[0].lastArrival;
  }
  // Fresh rig with 8 lambdas.
  StubPolicy widePolicy(8);
  PhotonicRouter wideSource("w0", smallConfig(0), widePolicy);
  PhotonicRouter wideDestination("w1", smallConfig(1), widePolicy);
  wideSource.setPeers({&wideSource, &wideDestination});
  wideDestination.setPeers({&wideSource, &wideDestination});
  CountingSink wideSinks[4];
  for (std::uint32_t i = 0; i < 4; ++i) wideDestination.connectEjection(i, wideSinks[i]);
  for (std::uint32_t i = 0; i < 4; ++i) wideSource.connectEjection(i, narrowSink);
  sim::Engine wideEngine;
  wideEngine.add(wideSource);
  wideEngine.add(wideDestination);
  const auto packet = interPacket(1, 0, 4);
  for (std::uint32_t i = 0; i < packet->numFlits; ++i) {
    wideSource.inputPort(0).accept(noc::makeFlit(packet, i), 0);
  }
  wideEngine.run(40);
  ASSERT_EQ(wideSinks[0].flits.size(), 8u);
  EXPECT_LT(wideSinks[0].lastArrival, narrowDone);
}

TEST_F(PhotonicRouterTest, ReceiveVcExhaustionFailsReservation) {
  // Block ejection so receive VCs stay occupied; with 2 VCs the third packet
  // cannot reserve and the source counts failures (drop-and-retransmit).
  for (auto& sink : destinationSinks) sink.blocked = true;
  inject(interPacket(1, 0, 4), 0);
  inject(interPacket(2, 0, 5), 1);
  inject(interPacket(3, 0, 6), 2);
  engine.run(60);
  EXPECT_GT(source.stats().reservationFailures, 0u);
  EXPECT_EQ(source.stats().packetsTransmitted, 2u);
  // Unblock: the third packet goes through on retry.
  for (auto& sink : destinationSinks) sink.blocked = false;
  engine.run(60);
  EXPECT_EQ(source.stats().packetsTransmitted, 3u);
}

TEST_F(PhotonicRouterTest, OneTransmissionAtATimePerWriteChannel) {
  inject(interPacket(1, 0, 4), 0);
  inject(interPacket(2, 0, 5), 1);
  engine.run(14);  // enough for packet 1 (13 cycles) but not both
  const auto transmitted = source.stats().packetsTransmitted;
  EXPECT_LE(transmitted, 1u);
  engine.run(40);
  EXPECT_EQ(source.stats().packetsTransmitted, 2u);
}

TEST_F(PhotonicRouterTest, EjectionRoundRobinsAcrossConcurrentReceives) {
  // Two packets for the same destination core from different input ports:
  // both reserve receive VCs, ejection serves one flit per cycle.
  inject(interPacket(1, 0, 4), 0);
  inject(interPacket(2, 0, 4), 1);
  engine.run(80);
  EXPECT_EQ(destinationSinks[0].flits.size(), 16u);
}

TEST_F(PhotonicRouterTest, ChargesPhotonicEnergyPerBit) {
  inject(interPacket(1, 0, 4));
  engine.run(40);
  // 256 data bits at 0.43 pJ/bit (launch+mod+tuning) plus the reservation
  // flit's bits.
  const double dataOnly = 256 * 0.43;
  EXPECT_GT(source.transferLedger().total(), dataOnly - 1e-9);
  EXPECT_LT(source.transferLedger().total(), dataOnly * 1.3);
}

}  // namespace
}  // namespace pnoc::network

#include "photonic/devices.hpp"

#include <gtest/gtest.h>

#include "photonic/energy_model.hpp"
#include "photonic/waveguide.hpp"
#include "photonic/wavelength.hpp"

namespace pnoc::photonic {
namespace {

TEST(Wavelength, FlattenUnflattenRoundTrip) {
  for (std::uint32_t wg = 0; wg < 8; ++wg) {
    for (std::uint32_t l = 0; l < 64; ++l) {
      const WavelengthId id{wg, l};
      EXPECT_EQ(unflatten(flatten(id, 64), 64), id);
    }
  }
}

TEST(Wavelength, FlattenIsDense) {
  // Flat indices must cover 0..N-1 exactly once.
  std::vector<bool> seen(4 * 16, false);
  for (std::uint32_t wg = 0; wg < 4; ++wg) {
    for (std::uint32_t l = 0; l < 16; ++l) {
      const std::uint32_t flat = flatten(WavelengthId{wg, l}, 16);
      ASSERT_LT(flat, seen.size());
      EXPECT_FALSE(seen[flat]);
      seen[flat] = true;
    }
  }
}

TEST(Wavelength, CeilLog2) {
  EXPECT_EQ(ceilLog2(1), 0u);
  EXPECT_EQ(ceilLog2(2), 1u);
  EXPECT_EQ(ceilLog2(3), 2u);
  EXPECT_EQ(ceilLog2(8), 3u);
  EXPECT_EQ(ceilLog2(9), 4u);
  EXPECT_EQ(ceilLog2(64), 6u);
}

TEST(Wavelength, IdentifierBitsMatchSection3411) {
  // BW set 1: one data waveguide -> 6-bit identifiers.
  EXPECT_EQ(identifierBits(1), 6u);
  // BW set 3: 8 waveguides -> 6 + 3 = 9 bits.
  EXPECT_EQ(identifierBits(8), 9u);
  EXPECT_EQ(identifierBits(4), 8u);
}

TEST(MicroRingResonator, TuneCountsOnlyChanges) {
  MicroRingResonator ring(MicroRingResonator::Role::kModulator, WavelengthId{0, 0});
  EXPECT_EQ(ring.retuneCount(), 0u);
  ring.tuneTo(WavelengthId{0, 0});  // no-op
  EXPECT_EQ(ring.retuneCount(), 0u);
  ring.tuneTo(WavelengthId{0, 5});
  EXPECT_EQ(ring.retuneCount(), 1u);
  EXPECT_EQ(ring.resonantWavelength(), (WavelengthId{0, 5}));
}

TEST(MicroRingResonator, TransfersOnlyWhenOn) {
  MicroRingResonator ring(MicroRingResonator::Role::kModulator, WavelengthId{0, 0});
  ring.setOn(true);
  ring.transferBits(128);
  EXPECT_EQ(ring.bitsTransferred(), 128u);
}

TEST(MicroRingResonator, FiveMicronFootprint) {
  EXPECT_NEAR(MicroRingResonator::areaUm2(), 78.54, 0.01);
}

TEST(LaserSource, PowerScalesWithWavelengths) {
  LaserSource laser(64);  // 1.5 mW per wavelength (Table 3-4)
  EXPECT_DOUBLE_EQ(laser.totalPowerMw(), 96.0);
  // 96 mW for 4 us = 384 nJ = 3.84e5 pJ... check: 96e-3 W * 4e-6 s = 3.84e-7 J.
  EXPECT_NEAR(laser.energyOverSecondsPj(4e-6), 3.84e5, 1.0);
}

TEST(PhotonicSwitchElement, TurnsOnlyMatchingWavelengthWhenOn) {
  PhotonicSwitchElement pse(WavelengthId{0, 3});
  EXPECT_FALSE(pse.turns(WavelengthId{0, 3}));  // off
  pse.setOn(true);
  EXPECT_TRUE(pse.turns(WavelengthId{0, 3}));
  EXPECT_FALSE(pse.turns(WavelengthId{0, 4}));
  EXPECT_GT(pse.insertionLossDb(WavelengthId{0, 3}),
            pse.insertionLossDb(WavelengthId{0, 4}));
}

TEST(WaveguideSpec, PropagationDelayIsPlausible) {
  WaveguideSpec spec;  // 4 cm at 0.4c
  const double delay = spec.propagationDelaySeconds();
  // 4 cm / (0.4 * 3e10 cm/s) = 333 ps, i.e. about one 400 ps clock cycle.
  EXPECT_NEAR(delay, 333e-12, 5e-12);
  EXPECT_DOUBLE_EQ(spec.propagationLossDb(), 4.0);
}

TEST(WavelengthAllocationMap, AllocateReleaseRoundTrip) {
  WavelengthAllocationMap map(2, 4);
  const WavelengthId id{1, 2};
  EXPECT_TRUE(map.isFree(id));
  map.allocate(id, 5);
  EXPECT_EQ(map.owner(id), std::optional<ClusterId>(5));
  EXPECT_EQ(map.ownedCount(5), 1u);
  EXPECT_EQ(map.freeCount(), 7u);
  map.release(id, 5);
  EXPECT_TRUE(map.isFree(id));
  EXPECT_EQ(map.freeCount(), 8u);
}

TEST(WavelengthAllocationMap, OwnedListsInOrder) {
  WavelengthAllocationMap map(2, 4);
  map.allocate(WavelengthId{1, 1}, 3);
  map.allocate(WavelengthId{0, 2}, 3);
  map.allocate(WavelengthId{0, 0}, 7);
  const auto owned = map.owned(3);
  ASSERT_EQ(owned.size(), 2u);
  EXPECT_EQ(owned[0], (WavelengthId{0, 2}));
  EXPECT_EQ(owned[1], (WavelengthId{1, 1}));
}

TEST(EnergyModel, TableConstants) {
  const EnergyParams params;  // Tables 3-4 / 3-5
  EXPECT_DOUBLE_EQ(params.modulationPjPerBit, 0.04);
  EXPECT_DOUBLE_EQ(params.tuningPjPerBit, 0.24);
  EXPECT_DOUBLE_EQ(params.launchPjPerBit, 0.15);
  EXPECT_DOUBLE_EQ(params.bufferPjPerBit, 0.0781250);
  EXPECT_DOUBLE_EQ(params.routerPjPerBit, 0.625);
  EXPECT_DOUBLE_EQ(params.laserPowerMwPerWavelength, 1.5);
  EXPECT_DOUBLE_EQ(params.tuningPowerMwPerNm, 2.4);
}

TEST(EnergyModel, LedgerCategorySplit) {
  EnergyLedger ledger;
  ledger.add(EnergyCategory::kLaunch, 1.0);
  ledger.add(EnergyCategory::kModulation, 2.0);
  ledger.add(EnergyCategory::kTuning, 3.0);
  ledger.add(EnergyCategory::kPhotonicBuffer, 4.0);
  ledger.add(EnergyCategory::kElectricalRouter, 5.0);
  ledger.add(EnergyCategory::kElectricalLink, 6.0);
  EXPECT_DOUBLE_EQ(ledger.photonic(), 10.0);   // eq. (4)
  EXPECT_DOUBLE_EQ(ledger.electrical(), 11.0);
  EXPECT_DOUBLE_EQ(ledger.total(), 21.0);      // eq. (3)
}

TEST(EnergyModel, ChargePhotonicTransferPerBit) {
  EnergyLedger ledger;
  const EnergyParams params;
  chargePhotonicTransfer(ledger, params, 1000);
  EXPECT_DOUBLE_EQ(ledger.of(EnergyCategory::kLaunch), 150.0);
  EXPECT_DOUBLE_EQ(ledger.of(EnergyCategory::kModulation), 40.0);
  EXPECT_DOUBLE_EQ(ledger.of(EnergyCategory::kTuning), 240.0);
  // 0.43 pJ/bit total photonic link energy.
  EXPECT_DOUBLE_EQ(ledger.photonic(), 430.0);
}

TEST(EnergyModel, LedgerAccumulates) {
  EnergyLedger a;
  EnergyLedger b;
  a.add(EnergyCategory::kLaunch, 1.5);
  b.add(EnergyCategory::kLaunch, 2.5);
  b.add(EnergyCategory::kTuning, 1.0);
  a += b;
  EXPECT_DOUBLE_EQ(a.of(EnergyCategory::kLaunch), 4.0);
  EXPECT_DOUBLE_EQ(a.of(EnergyCategory::kTuning), 1.0);
}

}  // namespace
}  // namespace pnoc::photonic

#include "photonic/area_model.hpp"

#include <gtest/gtest.h>

namespace pnoc::photonic {
namespace {

// The paper's studied configuration: 16 photonic routers, 64 lambdas per
// waveguide, 64 aggregate data wavelengths (Section 3.4.3).
AreaParams paperParams() { return AreaParams{}; }

TEST(AreaModel, DataWaveguideCount) {
  EXPECT_EQ(dataWaveguidesNeeded(64, 64), 1u);
  EXPECT_EQ(dataWaveguidesNeeded(65, 64), 2u);
  EXPECT_EQ(dataWaveguidesNeeded(256, 64), 4u);
  EXPECT_EQ(dataWaveguidesNeeded(512, 64), 8u);
  EXPECT_EQ(dataWaveguidesNeeded(1, 64), 1u);
}

TEST(AreaModel, DhetpnocCountsAt64Wavelengths) {
  // eqs. (6)-(8): 16*64*1 data, 16*64 reservation, 16*64 control modulators;
  // eqs. (15)-(17): 1024 data, 16*64*15 reservation, 1024 control detectors.
  const DeviceCounts counts = dhetpnocCounts(paperParams(), 64);
  EXPECT_EQ(counts.modulatorsData, 1024u);
  EXPECT_EQ(counts.modulatorsReservation, 1024u);
  EXPECT_EQ(counts.modulatorsControl, 1024u);
  EXPECT_EQ(counts.totalModulators(), 3072u);  // eq. (9)
  EXPECT_EQ(counts.detectorsData, 1024u);
  EXPECT_EQ(counts.detectorsReservation, 15360u);
  EXPECT_EQ(counts.detectorsControl, 1024u);
  EXPECT_EQ(counts.totalDetectors(), 17408u);  // eq. (18)
}

TEST(AreaModel, FireflyCountsAt64Wavelengths) {
  // lambda_NF = 64/16 = 4; eq. (13): 16*4 + 16*64 = 1088 modulators;
  // eq. (22): 16*4*15 + 16*64*15 = 16320 detectors.
  const DeviceCounts counts = fireflyCounts(paperParams(), 64);
  EXPECT_EQ(counts.modulatorsData, 64u);
  EXPECT_EQ(counts.modulatorsReservation, 1024u);
  EXPECT_EQ(counts.totalModulators(), 1088u);
  EXPECT_EQ(counts.detectorsData, 960u);
  EXPECT_EQ(counts.detectorsReservation, 15360u);
  EXPECT_EQ(counts.totalDetectors(), 16320u);
  EXPECT_EQ(counts.modulatorsControl, 0u);  // no control waveguide in Firefly
  EXPECT_EQ(counts.detectorsControl, 0u);
}

TEST(AreaModel, ReproducesPaperAreas) {
  // Section 3.4.3: "The total modulator/demodulator area for d-HetPNoC and
  // Firefly are 1.608 mm^2 and 1.367 mm^2 respectively for the configuration
  // with 64 data wavelengths studied in this work."
  const double dhet = areaMm2(dhetpnocCounts(paperParams(), 64));
  const double firefly = areaMm2(fireflyCounts(paperParams(), 64));
  EXPECT_NEAR(dhet, 1.608, 0.001);
  EXPECT_NEAR(firefly, 1.367, 0.001);
}

TEST(AreaModel, DhetpnocAlwaysLargerThanFirefly) {
  for (std::uint32_t lambdas : {64u, 128u, 256u, 384u, 512u}) {
    const double dhet = areaMm2(dhetpnocCounts(paperParams(), lambdas));
    const double firefly = areaMm2(fireflyCounts(paperParams(), lambdas));
    EXPECT_GT(dhet, firefly) << "at " << lambdas << " wavelengths";
  }
}

TEST(AreaModel, PaperScalingSixtyFourToFiveTwelve) {
  // Figures 3-8/3-9: "as the total wavelength changes from 64 to 512, the
  // total area increases by 70%".
  const double at64 = areaMm2(dhetpnocCounts(paperParams(), 64));
  const double at512 = areaMm2(dhetpnocCounts(paperParams(), 512));
  EXPECT_NEAR((at512 - at64) / at64, 0.70, 0.02);
}

TEST(AreaModel, FireflyScalingMatchesPaperFortyOnePercent) {
  // The Fig 3-10 discussion says Firefly's area grows 41.17% "as the total
  // wavelength changes from 64 to 256", but eqs. (10)-(13)/(19)-(22) give
  // +17.6% for 64->256 and exactly +41.17% (24576/17408 rings) for 64->512.
  // The text's "256" is a typo for 512 — the figure sweeps to 512 and the
  // parallel d-HetPNoC claim (+70%) is also quoted at 512.  Pin the exact
  // ring counts so any regression in the equations is caught.
  const double at64 = areaMm2(fireflyCounts(paperParams(), 64));
  const double at512 = areaMm2(fireflyCounts(paperParams(), 512));
  EXPECT_EQ(fireflyCounts(paperParams(), 64).totalRings(), 17408u);
  EXPECT_EQ(fireflyCounts(paperParams(), 512).totalRings(), 24576u);
  EXPECT_NEAR((at512 - at64) / at64, 0.4117, 0.001);
}

class AreaMonotonicity : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(AreaMonotonicity, MoreWavelengthsNeverShrinkEitherArchitecture) {
  const std::uint32_t lambdas = GetParam();
  const AreaParams params = paperParams();
  EXPECT_GE(areaMm2(dhetpnocCounts(params, lambdas + 64)),
            areaMm2(dhetpnocCounts(params, lambdas)));
  EXPECT_GE(areaMm2(fireflyCounts(params, lambdas + 64)),
            areaMm2(fireflyCounts(params, lambdas)));
}

INSTANTIATE_TEST_SUITE_P(Sweep, AreaMonotonicity,
                         ::testing::Values(64u, 128u, 192u, 256u, 320u, 384u, 448u));

TEST(AreaModel, RestrictedVariantShrinksOnlyDataModulators) {
  // The thesis conclusion's mitigation: router x writes only waveguides x and
  // x+1.  At 512 wavelengths (8 data waveguides) the data modulators drop
  // from 16*64*8 to 16*64*2; everything else is unchanged.
  const AreaParams params = paperParams();
  const DeviceCounts full = dhetpnocCounts(params, 512);
  const DeviceCounts restricted = restrictedDhetpnocCounts(params, 512, 2);
  EXPECT_EQ(restricted.modulatorsData, 16u * 64u * 2u);
  EXPECT_LT(restricted.modulatorsData, full.modulatorsData);
  EXPECT_EQ(restricted.detectorsData, full.detectorsData);
  EXPECT_EQ(restricted.modulatorsReservation, full.modulatorsReservation);
  EXPECT_LT(areaMm2(restricted), areaMm2(full));
}

TEST(AreaModel, RestrictedVariantNoOpWhenCapExceedsWaveguides) {
  const AreaParams params = paperParams();
  const DeviceCounts full = dhetpnocCounts(params, 64);
  const DeviceCounts restricted = restrictedDhetpnocCounts(params, 64, 2);
  EXPECT_EQ(restricted.totalRings(), full.totalRings());
}

TEST(AreaModel, RingAreaUsesFiveMicronRadius) {
  DeviceCounts one;
  one.modulatorsData = 1;
  // pi * 25 um^2 = 78.54 um^2 = 7.854e-5 mm^2.
  EXPECT_NEAR(areaMm2(one), 7.854e-5, 1e-7);
}

}  // namespace
}  // namespace pnoc::photonic

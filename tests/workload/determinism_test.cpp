// Closed-loop determinism: the workload subsystem must uphold the same
// guarantees as the open-loop engine work before it —
//  1. gated and ungated engines produce bit-identical metrics (the one-cycle
//     ejection deferral is exactly what buys this),
//  2. reset()+run() replays a fresh network exactly,
//  3. every execution backend (threads | processes | stream), at any shard
//     count, produces byte-identical wire serializations.
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "network/network.hpp"
#include "scenario/execution_backend.hpp"
#include "scenario/in_process_backend.hpp"
#include "scenario/scenario_runner.hpp"
#include "scenario/wire.hpp"

namespace pnoc::workload {
namespace {

network::SimulationParameters workloadParams(const std::string& workload,
                                             const char* pattern,
                                             std::uint64_t seed, bool gating) {
  network::SimulationParameters params;
  params.workload = workload;
  params.pattern = pattern;
  params.seed = seed;
  params.warmupCycles = 200;
  params.measureCycles = 1500;
  params.activityGating = gating;
  return params;
}

std::string runToWire(const network::SimulationParameters& params) {
  network::PhotonicNetwork net(params);
  return scenario::wire::toJson(net.run());
}

using WorkloadCase = std::tuple<const char*, const char*>;

class WorkloadDeterminism : public ::testing::TestWithParam<WorkloadCase> {};

TEST_P(WorkloadDeterminism, GatedAndUngatedEnginesAreBitIdentical) {
  const auto& [workload, pattern] = GetParam();
  for (const std::uint64_t seed : {1ull, 42ull}) {
    const std::string gated = runToWire(workloadParams(workload, pattern, seed, true));
    const std::string ungated =
        runToWire(workloadParams(workload, pattern, seed, false));
    EXPECT_EQ(gated, ungated) << workload << " seed " << seed;
  }
}

TEST_P(WorkloadDeterminism, SameSeedSameWireAcrossRuns) {
  const auto& [workload, pattern] = GetParam();
  const auto params = workloadParams(workload, pattern, 9, true);
  EXPECT_EQ(runToWire(params), runToWire(params));
}

TEST_P(WorkloadDeterminism, ResetReuseReplaysAFreshNetwork) {
  const auto& [workload, pattern] = GetParam();
  const auto params = workloadParams(workload, pattern, 9, true);
  const std::string fresh = runToWire(params);
  network::PhotonicNetwork reused(params);
  reused.run();  // dirty every deque, credit list and flow counter
  reused.reset();
  ASSERT_EQ(reused.occupancy(), 0u)
      << "reset() must drain every buffer before the replay run";
  EXPECT_EQ(scenario::wire::toJson(reused.run()), fresh);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WorkloadDeterminism,
    ::testing::Values(
        // think=0 stresses back-to-back reissue; think>0 exercises the timer
        // path (cores park through the think window); chain adds the
        // directory hop and its destination draws from responder streams;
        // real-apps adds responder-only memory clusters.
        WorkloadCase{"closed:window=1", "uniform"},
        WorkloadCase{"closed:window=4,think=25", "skewed3"},
        WorkloadCase{"chain:window=2,think=5", "uniform"},
        WorkloadCase{"closed:window=2", "real-apps"}));

// Backend equivalence: the same closed-loop batch through every backend and
// several shard counts, compared through the full wire serialization (which
// now carries the request-latency histogram and flow counters).
TEST(WorkloadBackends, AllBackendsAllShardCountsMatchBitForBit) {
  auto makeSpec = [](const std::string& workload, const char* pattern,
                     std::uint64_t seed) {
    scenario::ScenarioSpec spec;
    spec.set("workload", workload);
    spec.set("pattern", pattern);
    spec.params.seed = seed;
    spec.params.warmupCycles = 100;
    spec.params.measureCycles = 800;
    return spec;
  };
  const std::vector<scenario::ScenarioSpec> specs = {
      makeSpec("closed:window=2", "uniform", 3),
      makeSpec("chain:window=2,think=10", "skewed3", 5),
      makeSpec("closed:window=4,think=5", "real-apps", 7),
  };

  scenario::InProcessBackend reference(1);
  const auto expected = reference.run(specs);
  ASSERT_EQ(expected.size(), specs.size());
  for (const auto& result : expected) {
    ASSERT_GT(result.metrics.requestsCompleted, 0u);
  }

  for (const auto kind : {scenario::BackendKind::kThreads,
                          scenario::BackendKind::kProcesses,
                          scenario::BackendKind::kStream}) {
    for (const unsigned shards : {1u, 2u, 3u}) {
      const auto backend =
          scenario::makeBackend(scenario::BackendOptions{kind, shards, ""});
      const auto actual = backend->run(specs);
      ASSERT_EQ(actual.size(), expected.size());
      for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(scenario::wire::toJson(actual[i].metrics),
                  scenario::wire::toJson(expected[i].metrics))
            << scenario::toString(kind) << " shards=" << shards << " spec=" << i;
      }
    }
  }
}

}  // namespace
}  // namespace pnoc::workload

// NDJSON packet traces: format round-trip, strict parsing, and the headline
// guarantee — replaying a recorded run reproduces the recorded run's metrics
// byte-for-byte (checked through the exact wire serialization and through
// the BENCH record lines a bench binary would emit).
#include "workload/trace.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>

#include "network/network.hpp"
#include "scenario/json_record.hpp"
#include "scenario/scenario_runner.hpp"
#include "scenario/wire.hpp"

namespace pnoc::workload {
namespace {

class TempTraceFile {
 public:
  TempTraceFile()
      : path_(::testing::TempDir() + "pnoc_trace_" + std::to_string(::getpid()) +
              "_" + std::to_string(counter_++) + ".ndjson") {}
  ~TempTraceFile() { std::remove(path_.c_str()); }

  const std::string& path() const { return path_; }

 private:
  static int counter_;
  std::string path_;
};

int TempTraceFile::counter_ = 0;

TraceData sampleTrace() {
  TraceData trace;
  trace.numCores = 64;
  TraceEvent plain;
  plain.cycle = 3;
  plain.src = 1;
  plain.dst = 9;
  plain.flits = 64;
  trace.events.push_back(plain);
  TraceEvent flow;
  flow.cycle = 5;
  flow.src = 2;
  flow.dst = 40;
  flow.flits = 8;
  flow.flowId = 17;
  flow.kind = noc::FlowKind::kRequest;
  flow.originCore = 2;
  flow.flowStartedAt = 5;
  trace.events.push_back(flow);
  return trace;
}

TEST(TraceFormat, TextRoundTripPreservesEveryField) {
  const TraceData trace = sampleTrace();
  const TraceData parsed = parseTrace(traceToText(trace));
  EXPECT_EQ(parsed.version, kTraceVersion);
  EXPECT_EQ(parsed.numCores, 64u);
  ASSERT_EQ(parsed.events.size(), 2u);
  EXPECT_EQ(parsed.events[0].cycle, Cycle{3});
  EXPECT_EQ(parsed.events[0].dst, 9u);
  EXPECT_EQ(parsed.events[0].kind, noc::FlowKind::kNone);
  EXPECT_EQ(parsed.events[1].flowId, 17u);
  EXPECT_EQ(parsed.events[1].kind, noc::FlowKind::kRequest);
  EXPECT_EQ(parsed.events[1].originCore, 2u);
  EXPECT_EQ(parsed.events[1].flowStartedAt, Cycle{5});
}

TEST(TraceFormat, FileRoundTrip) {
  TempTraceFile file;
  writeTraceFile(file.path(), sampleTrace());
  const TraceData loaded = loadTraceFile(file.path());
  EXPECT_EQ(loaded.numCores, 64u);
  EXPECT_EQ(loaded.events.size(), 2u);
  EXPECT_EQ(loaded.events[1].flowId, 17u);
}

TEST(TraceFormat, PlainEventsOmitTheFlowFields) {
  // Open-loop packets dominate most traces; their lines must stay minimal.
  const std::string text = traceToText(sampleTrace());
  const std::string firstEvent = text.substr(text.find('\n') + 1);
  EXPECT_EQ(firstEvent.substr(0, firstEvent.find('\n')),
            "{\"c\":3,\"s\":1,\"d\":9,\"f\":64,\"id\":0}");
}

TEST(TraceFormat, RejectsMissingHeaderWrongVersionAndBadEvents) {
  EXPECT_THROW(parseTrace(""), std::invalid_argument);
  // Events before any header.
  EXPECT_THROW(parseTrace("{\"c\":1,\"s\":0,\"d\":1,\"f\":8,\"id\":0}\n"),
               std::invalid_argument);
  // Future version.
  EXPECT_THROW(parseTrace("{\"pnoc_trace\":99,\"cores\":64}\n"),
               std::invalid_argument);
  const std::string header = "{\"pnoc_trace\":1,\"cores\":64}\n";
  // Core out of range.
  EXPECT_THROW(parseTrace(header + "{\"c\":1,\"s\":64,\"d\":1,\"f\":8,\"id\":0}\n"),
               std::invalid_argument);
  EXPECT_THROW(parseTrace(header + "{\"c\":1,\"s\":0,\"d\":70,\"f\":8,\"id\":0}\n"),
               std::invalid_argument);
  // Cycles must be non-decreasing (the recorder emits them in order).
  EXPECT_THROW(parseTrace(header + "{\"c\":9,\"s\":0,\"d\":1,\"f\":8,\"id\":0}\n" +
                          "{\"c\":3,\"s\":0,\"d\":1,\"f\":8,\"id\":1}\n"),
               std::invalid_argument);
  // Malformed JSON line.
  EXPECT_THROW(parseTrace(header + "not json\n"), std::invalid_argument);
  // Unreadable file.
  EXPECT_THROW(loadTraceFile("/nonexistent/dir/trace.ndjson"), std::invalid_argument);
}

TEST(TraceReplay, RejectsCoreCountMismatch) {
  TraceData trace = sampleTrace();
  EXPECT_THROW(TraceReplayWorkload(trace, 32), std::invalid_argument);
  EXPECT_NO_THROW(TraceReplayWorkload(trace, 64));
}

network::SimulationParameters traceParams(const std::string& workload) {
  network::SimulationParameters params;
  params.pattern = "skewed3";
  params.workload = workload;
  params.warmupCycles = 150;
  params.measureCycles = 1200;
  params.seed = 23;
  return params;
}

// The headline guarantee: record a closed-loop run, replay the trace, and
// every metric — flit latency, request latency, counters, energy — matches
// byte-for-byte through the exact wire serialization.
TEST(TraceReplay, ReproducesARecordedRunByteForByte) {
  TempTraceFile file;
  auto recordedParams = traceParams("closed:window=2,think=5");
  recordedParams.traceOut = file.path();
  network::PhotonicNetwork recorded(recordedParams);
  const auto recordedMetrics = recorded.run();
  ASSERT_GT(recordedMetrics.requestsCompleted, 0u);

  auto replayParams = traceParams("trace:file=" + file.path());
  network::PhotonicNetwork replayed(replayParams);
  const auto replayedMetrics = replayed.run();
  EXPECT_EQ(scenario::wire::toJson(replayedMetrics),
            scenario::wire::toJson(recordedMetrics));
  // Conservation holds for the replay too.
  EXPECT_EQ(replayed.totalFlitsInjected(),
            replayed.totalFlitsEjected() + replayed.occupancy());
}

TEST(TraceReplay, ReproducesAnOpenLoopRunToo) {
  TempTraceFile file;
  auto recordedParams = traceParams("open");
  recordedParams.offeredLoad = 0.002;
  recordedParams.traceOut = file.path();
  network::PhotonicNetwork recorded(recordedParams);
  const auto recordedMetrics = recorded.run();
  ASSERT_GT(recordedMetrics.packetsDelivered, 0u);

  auto replayParams = traceParams("trace:file=" + file.path());
  network::PhotonicNetwork replayed(replayParams);
  const auto replayedMetrics = replayed.run();
  // Refused offers never entered a queue, so the replay offers exactly the
  // accepted packets: delivery, latency and energy match byte-for-byte;
  // packetsOffered differs by exactly the refusals.
  EXPECT_EQ(replayedMetrics.packetsGenerated, recordedMetrics.packetsGenerated);
  EXPECT_EQ(replayedMetrics.bitsDelivered, recordedMetrics.bitsDelivered);
  EXPECT_EQ(replayedMetrics.latencyCyclesSum, recordedMetrics.latencyCyclesSum);
  EXPECT_EQ(replayedMetrics.ledger.total(), recordedMetrics.ledger.total());
  EXPECT_EQ(replayedMetrics.packetsOffered + recordedMetrics.packetsRefused,
            recordedMetrics.packetsOffered);
}

// ... and the BENCH record lines built from a replay are byte-identical to
// the recorded run's (the spec identity fields — arch, pattern, seed — are
// shared; `workload` is deliberately not part of recordIdentity).
TEST(TraceReplay, BenchRecordsMatchByteForByte) {
  TempTraceFile file;
  scenario::ScenarioSpec recordedSpec;
  recordedSpec.set("pattern", "skewed3");
  recordedSpec.set("workload", "chain:window=2");
  recordedSpec.set("trace_out", file.path());
  recordedSpec.set("seed", "31");
  recordedSpec.set("warmup", "150");
  recordedSpec.set("measure", "1200");
  const auto recordedMetrics = scenario::runScenario(recordedSpec);
  ASSERT_GT(recordedMetrics.requestsCompleted, 0u);

  scenario::ScenarioSpec replaySpec = recordedSpec;
  replaySpec.set("workload", "trace:file=" + file.path());
  replaySpec.set("trace_out", "");
  const auto replayedMetrics = scenario::runScenario(replaySpec);

  scenario::JsonRecorder recorder("trace_replay_compare");
  const std::string recordedLine =
      scenario::recordRun(recorder, recordedSpec, recordedMetrics).serialize();
  const std::string replayedLine =
      scenario::recordRun(recorder, replaySpec, replayedMetrics).serialize();
  EXPECT_EQ(replayedLine, recordedLine);
}

TEST(TraceRecorder, ResetClearsRecordedEvents) {
  TempTraceFile file;
  auto params = traceParams("closed:window=1");
  params.traceOut = file.path();
  params.warmupCycles = 50;
  params.measureCycles = 300;
  network::PhotonicNetwork net(params);
  net.run();
  const std::size_t firstRun = net.recordedTrace().events.size();
  ASSERT_GT(firstRun, 0u);
  net.reset();
  EXPECT_TRUE(net.recordedTrace().events.empty());
  net.run();
  // A reset run records the identical event sequence, not an appended one.
  EXPECT_EQ(net.recordedTrace().events.size(), firstRun);
}

}  // namespace
}  // namespace pnoc::workload

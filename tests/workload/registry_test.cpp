// Workload registry: family lookup, spec parsing (shared grammar with the
// traffic patterns), option validation with nearest-key suggestions, and the
// help text the CLI prints.
#include "workload/registry.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "noc/topology.hpp"
#include "traffic/registry.hpp"
#include "workload/closed_loop.hpp"

namespace pnoc::workload {
namespace {

class RegistryFixture : public ::testing::Test {
 protected:
  RegistryFixture()
      : topology_(64, 4),
        pattern_(traffic::makePattern("uniform", topology_,
                                      traffic::BandwidthSet::set1())) {
    context_.topology = &topology_;
    context_.pattern = pattern_.get();
    context_.defaultPacketFlits = 64;
  }

  noc::ClusterTopology topology_;
  std::unique_ptr<traffic::TrafficPattern> pattern_;
  WorkloadBuildContext context_;
};

TEST_F(RegistryFixture, BuiltinFamiliesAreRegistered) {
  const auto& registry = WorkloadRegistry::global();
  EXPECT_TRUE(registry.contains("open"));
  EXPECT_TRUE(registry.contains("closed"));
  EXPECT_TRUE(registry.contains("chain"));
  EXPECT_TRUE(registry.contains("trace"));
  EXPECT_FALSE(registry.contains("nonsense"));
  EXPECT_GE(registry.families().size(), 4u);
}

TEST_F(RegistryFixture, OpenResolvesToNoModel) {
  // nullptr keeps CoreNode's classic open-loop injector byte-identical.
  EXPECT_EQ(makeWorkload("open", context_), nullptr);
}

TEST_F(RegistryFixture, ClosedSpecParsesItsOptions) {
  const auto workload = makeWorkload("closed:window=6,think=20,req_flits=4", context_);
  ASSERT_NE(workload, nullptr);
  const auto* closed = dynamic_cast<const ClosedLoopWorkload*>(workload.get());
  ASSERT_NE(closed, nullptr);
  EXPECT_EQ(closed->name(), "closed");
  EXPECT_EQ(closed->config().window, 6u);
  EXPECT_EQ(closed->config().thinkCycles, Cycle{20});
  EXPECT_EQ(closed->config().requestFlits, 4u);
  EXPECT_FALSE(closed->config().chain);
}

TEST_F(RegistryFixture, ChainSetsTheChainFlagAndForwardSize) {
  const auto workload = makeWorkload("chain:fwd_flits=12", context_);
  const auto* chain = dynamic_cast<const ClosedLoopWorkload*>(workload.get());
  ASSERT_NE(chain, nullptr);
  EXPECT_EQ(chain->name(), "chain");
  EXPECT_TRUE(chain->config().chain);
  EXPECT_EQ(chain->config().forwardFlits, 12u);
}

TEST_F(RegistryFixture, UnknownFamilySuggestsTheNearest) {
  try {
    makeWorkload("closd:window=4", context_);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("unknown workload: 'closd'"), std::string::npos) << message;
    EXPECT_NE(message.find("did you mean 'closed'?"), std::string::npos) << message;
  }
}

TEST_F(RegistryFixture, UnknownOptionSuggestsTheNearest) {
  // The ISSUE's canonical example: windw -> window.
  try {
    makeWorkload("closed:windw=4", context_);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("does not take option 'windw'"), std::string::npos)
        << message;
    EXPECT_NE(message.find("did you mean 'window'?"), std::string::npos) << message;
  }
}

TEST_F(RegistryFixture, ChainOnlyOptionIsRejectedForClosed) {
  // fwd_flits exists — but only the chain family takes it.
  EXPECT_THROW(makeWorkload("closed:fwd_flits=8", context_), std::invalid_argument);
  EXPECT_NO_THROW(makeWorkload("chain:fwd_flits=8", context_));
}

TEST_F(RegistryFixture, ZeroWindowIsRejected) {
  EXPECT_THROW(makeWorkload("closed:window=0", context_), std::invalid_argument);
}

TEST_F(RegistryFixture, TraceNeedsAFile) {
  EXPECT_THROW(makeWorkload("trace", context_), std::invalid_argument);
  EXPECT_THROW(makeWorkload("trace:file=/nonexistent/trace.ndjson", context_),
               std::invalid_argument);
}

TEST_F(RegistryFixture, HelpTextListsEveryFamilyAndItsOptions) {
  const std::string help = WorkloadRegistry::global().helpText();
  for (const char* needle : {"open", "closed", "chain", "trace", "window=",
                             "think=", "file=<path>"}) {
    EXPECT_NE(help.find(needle), std::string::npos) << "missing: " << needle;
  }
}

TEST_F(RegistryFixture, DuplicateAndInvalidRegistrationsAreRefused) {
  WorkloadRegistry registry;
  WorkloadFamily family{"x", "test", "", {},
                        [](const sim::Config&, const WorkloadBuildContext&)
                            -> std::unique_ptr<Workload> { return nullptr; }};
  EXPECT_TRUE(registry.add(family));
  EXPECT_FALSE(registry.add(family));  // duplicate name
  WorkloadFamily unnamed = family;
  unnamed.name = "";
  EXPECT_FALSE(registry.add(unnamed));
}

}  // namespace
}  // namespace pnoc::workload

// Closed-loop request--reply workload: window accounting at the model level
// (mock core), and the self-limiting behaviour the window buys at the system
// level — bounded request latency and window-limited throughput where the
// open loop collapses.
#include "workload/closed_loop.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "network/network.hpp"
#include "traffic/registry.hpp"

namespace pnoc::workload {
namespace {

// --- model-level tests against a scripted CoreContext ---

class MockCore final : public CoreContext {
 public:
  MockCore(CoreId id, const traffic::TrafficPattern& pattern)
      : id_(id), pattern_(&pattern), rng_(7) {}

  CoreId coreId() const override { return id_; }
  sim::Rng& workloadRng() override { return rng_; }
  const traffic::TrafficPattern& trafficPattern() const override { return *pattern_; }
  bool canSubmit() const override { return !full; }
  bool submitPacket(const PacketRequest& request, Cycle cycle) override {
    if (full) return false;
    submitted.push_back({request, cycle});
    return true;
  }

  struct Submission {
    PacketRequest request;
    Cycle cycle = 0;
  };
  std::vector<Submission> submitted;
  bool full = false;

 private:
  CoreId id_;
  const traffic::TrafficPattern* pattern_;
  sim::Rng rng_;
};

class ModelFixture : public ::testing::Test {
 protected:
  ModelFixture()
      : topology_(64, 4),
        pattern_(traffic::makePattern("uniform", topology_,
                                      traffic::BandwidthSet::set1())),
        core_(5, *pattern_) {}

  noc::ClusterTopology topology_;
  std::unique_ptr<traffic::TrafficPattern> pattern_;
  MockCore core_;
};

TEST_F(ModelFixture, IssuesExactlyTheWindowUpFront) {
  ClosedLoopWorkload::Config config;
  config.window = 3;
  ClosedLoopCoreWorkload model(config, /*requester=*/true);
  model.step(0, core_);
  EXPECT_EQ(core_.submitted.size(), 3u);
  EXPECT_EQ(model.outstanding(), 3u);
  for (const auto& s : core_.submitted) {
    EXPECT_EQ(s.request.kind, noc::FlowKind::kRequest);
    EXPECT_EQ(s.request.flits, config.requestFlits);
  }
  // No credits left: further steps issue nothing.
  model.step(1, core_);
  model.step(50, core_);
  EXPECT_EQ(core_.submitted.size(), 3u);
  EXPECT_EQ(model.nextEventAt(), kNoCycle);
}

TEST_F(ModelFixture, ReplyReturnsTheCreditAfterThink) {
  ClosedLoopWorkload::Config config;
  config.window = 1;
  config.thinkCycles = 10;
  ClosedLoopCoreWorkload model(config, /*requester=*/true);
  model.step(0, core_);
  ASSERT_EQ(core_.submitted.size(), 1u);

  noc::PacketDescriptor reply;
  reply.flowKind = noc::FlowKind::kReply;
  model.onPacketEjected(reply, /*cycle=*/100, core_);
  EXPECT_EQ(model.outstanding(), 0u);
  // Credit usable at 100 + 1 (deferral) + 10 (think) = 111, not before.
  EXPECT_EQ(model.nextEventAt(), Cycle{111});
  model.step(110, core_);
  EXPECT_EQ(core_.submitted.size(), 1u);
  model.step(111, core_);
  EXPECT_EQ(core_.submitted.size(), 2u);
  EXPECT_EQ(model.outstanding(), 1u);
}

TEST_F(ModelFixture, RequestEjectionSchedulesTheReplyNextCycle) {
  ClosedLoopWorkload::Config config;
  config.replyFlits = 4;
  ClosedLoopCoreWorkload model(config, /*requester=*/false);
  model.step(0, core_);
  EXPECT_TRUE(core_.submitted.empty());  // responders never issue requests

  noc::PacketDescriptor request;
  request.flowKind = noc::FlowKind::kRequest;
  request.flowId = 77;
  request.originCore = 12;
  request.flowStartedAt = 40;
  model.onPacketEjected(request, /*cycle=*/50, core_);
  EXPECT_EQ(model.nextEventAt(), Cycle{51});  // strictly after the ejection
  model.step(50, core_);
  EXPECT_TRUE(core_.submitted.empty());
  model.step(51, core_);
  ASSERT_EQ(core_.submitted.size(), 1u);
  const auto& submission = core_.submitted[0];
  EXPECT_EQ(submission.request.kind, noc::FlowKind::kReply);
  EXPECT_EQ(submission.request.dst, 12u);       // back to the flow's origin
  EXPECT_EQ(submission.request.flits, 4u);      // reply_flits honoured
  EXPECT_EQ(submission.request.flowId, 77u);    // flow identity carried
  EXPECT_EQ(submission.request.flowStartedAt, Cycle{40});
}

TEST_F(ModelFixture, ChainForwardsBeforeReplying) {
  ClosedLoopWorkload::Config config;
  config.chain = true;
  config.forwardFlits = 6;
  ClosedLoopCoreWorkload model(config, /*requester=*/false);

  noc::PacketDescriptor request;
  request.flowKind = noc::FlowKind::kRequest;
  request.flowId = 5;
  request.originCore = 9;
  model.onPacketEjected(request, 20, core_);
  model.step(21, core_);
  ASSERT_EQ(core_.submitted.size(), 1u);
  EXPECT_EQ(core_.submitted[0].request.kind, noc::FlowKind::kForward);
  EXPECT_EQ(core_.submitted[0].request.flits, 6u);
  EXPECT_EQ(core_.submitted[0].request.flowId, 5u);

  noc::PacketDescriptor forward;
  forward.flowKind = noc::FlowKind::kForward;
  forward.flowId = 5;
  forward.originCore = 9;
  model.onPacketEjected(forward, 30, core_);
  model.step(31, core_);
  ASSERT_EQ(core_.submitted.size(), 2u);
  EXPECT_EQ(core_.submitted[1].request.kind, noc::FlowKind::kReply);
  EXPECT_EQ(core_.submitted[1].request.dst, 9u);
}

TEST_F(ModelFixture, FullQueueDefersWithoutDrawingRandomness) {
  ClosedLoopWorkload::Config config;
  config.window = 2;
  ClosedLoopCoreWorkload model(config, /*requester=*/true);
  core_.full = true;
  const sim::Rng before = core_.workloadRng();
  model.step(0, core_);
  EXPECT_TRUE(core_.submitted.empty());
  EXPECT_EQ(model.outstanding(), 0u);
  // The blocked issue consumed NO randomness: the stream's next draws are
  // exactly what an unblocked core would have drawn.
  sim::Rng untouched = before;
  EXPECT_EQ(core_.workloadRng().next(), untouched.next());
  core_.full = false;
  model.step(1, core_);
  EXPECT_EQ(core_.submitted.size(), 2u);
}

TEST_F(ModelFixture, ResetRestoresTheFullWindow) {
  ClosedLoopWorkload::Config config;
  config.window = 2;
  ClosedLoopCoreWorkload model(config, /*requester=*/true);
  model.step(0, core_);
  ASSERT_EQ(model.outstanding(), 2u);
  model.reset();
  EXPECT_EQ(model.outstanding(), 0u);
  EXPECT_EQ(model.nextEventAt(), Cycle{0});
  core_.submitted.clear();
  model.step(0, core_);
  EXPECT_EQ(core_.submitted.size(), 2u);
}

// --- system-level tests over the full network ---

network::SimulationParameters closedParams(const std::string& workload,
                                           const char* pattern = "uniform") {
  network::SimulationParameters params;
  params.pattern = pattern;
  params.workload = workload;
  params.warmupCycles = 300;
  params.measureCycles = 3000;
  params.seed = 11;
  return params;
}

/// Max outstanding across all cores' models, polled between steps.
std::uint32_t maxOutstanding(const network::PhotonicNetwork& net) {
  std::uint32_t worst = 0;
  for (CoreId core = 0; core < net.params().numCores; ++core) {
    const auto* model = dynamic_cast<const ClosedLoopCoreWorkload*>(
        net.core(core).coreWorkload());
    if (model != nullptr) worst = std::max(worst, model->outstanding());
  }
  return worst;
}

TEST(ClosedLoopSystem, WindowBoundsOutstandingAtEveryCore) {
  auto params = closedParams("closed:window=3");
  network::PhotonicNetwork net(params);
  for (int chunk = 0; chunk < 30; ++chunk) {
    net.step(100);
    EXPECT_LE(maxOutstanding(net), 3u) << "chunk " << chunk;
  }
  // Global window accounting: issued - completed = in-flight <= 64 * window.
  std::uint64_t issued = 0, completed = 0;
  for (CoreId core = 0; core < 64; ++core) {
    issued += net.core(core).stats().requestsIssued;
    completed += net.core(core).stats().requestsCompleted;
  }
  ASSERT_GT(completed, 0u);
  EXPECT_LE(issued - completed, 64u * 3u);
}

TEST(ClosedLoopSystem, SelfLimitsWhereTheOpenLoopCollapses) {
  // Open loop far past saturation: offers outstrip delivery, the injection
  // queues overflow and refusals pile up.
  auto open = closedParams("open", "skewed3");
  open.offeredLoad = 0.01;  // several times the skewed3 knee
  network::PhotonicNetwork openNet(open);
  const auto openMetrics = openNet.run();
  ASSERT_GT(openMetrics.packetsRefused, 0u);
  EXPECT_LT(openMetrics.acceptance(), 0.9);

  // Closed loop on the same pattern: the window throttles the offer rate to
  // what the network actually completes, so nothing is ever refused and the
  // request latency stays bounded by window * round-trip.
  const auto closed = closedParams("closed:window=2", "skewed3");
  network::PhotonicNetwork closedNet(closed);
  const auto closedMetrics = closedNet.run();
  EXPECT_EQ(closedMetrics.packetsRefused, 0u);
  ASSERT_GT(closedMetrics.requestsCompleted, 0u);
  // Offered == achieved in steady state (within one window per core).
  EXPECT_LE(closedMetrics.requestsIssued - closedMetrics.requestsCompleted,
            64u * 2u);
  // Bounded request latency: with 2 outstanding per core a request waits at
  // most ~2 round trips; far below the open loop's runaway queueing delay.
  EXPECT_LT(closedMetrics.avgRequestLatencyCycles(), 2000.0);
  EXPECT_GT(closedMetrics.avgRequestLatencyCycles(), 0.0);
}

TEST(ClosedLoopSystem, LargerWindowBuysThroughputAtHigherLatency) {
  const auto small = closedParams("closed:window=1");
  network::PhotonicNetwork smallNet(small);
  const auto smallMetrics = smallNet.run();

  const auto large = closedParams("closed:window=8");
  network::PhotonicNetwork largeNet(large);
  const auto largeMetrics = largeNet.run();

  ASSERT_GT(smallMetrics.requestsCompleted, 0u);
  // More outstanding requests per core: strictly more work completes ...
  EXPECT_GT(largeMetrics.achievedRequestsPerKcycle(),
            smallMetrics.achievedRequestsPerKcycle());
  // ... at equal or worse per-request latency (queueing, never less).
  EXPECT_GE(largeMetrics.avgRequestLatencyCycles(),
            smallMetrics.avgRequestLatencyCycles());
}

TEST(ClosedLoopSystem, ChainFlowsCompleteWithAForwardHop) {
  auto params = closedParams("chain:window=2");
  network::PhotonicNetwork net(params);
  const auto metrics = net.run();
  ASSERT_GT(metrics.requestsCompleted, 0u);
  EXPECT_GT(metrics.repliesGenerated, 0u);
  // Every flow is request + forward + reply: the packet count strictly
  // exceeds requests + replies (the difference is the directory forwards).
  EXPECT_GT(metrics.packetsGenerated,
            metrics.requestsIssued + metrics.repliesGenerated);
  EXPECT_GT(metrics.avgRequestLatencyCycles(), 0.0);
}

TEST(ClosedLoopSystem, RealAppsMemoryClustersOnlyRespond) {
  auto params = closedParams("closed:window=2", "real-apps");
  network::PhotonicNetwork net(params);
  net.run();
  const auto* model = dynamic_cast<const ClosedLoopWorkload*>(net.workload());
  ASSERT_NE(model, nullptr);
  std::uint64_t responderReplies = 0;
  bool sawResponder = false;
  for (CoreId core = 0; core < 64; ++core) {
    const auto& stats = net.core(core).stats();
    if (!model->isRequester(core)) {
      sawResponder = true;
      EXPECT_EQ(stats.requestsIssued, 0u) << "memory core " << core << " issued";
      responderReplies += stats.repliesGenerated;
    }
  }
  ASSERT_TRUE(sawResponder) << "real-apps should designate memory clusters";
  EXPECT_GT(responderReplies, 0u);
}

TEST(ClosedLoopSystem, LoadKeyIsIgnoredInWorkloadMode) {
  // A closed loop paces itself: the load field (and setOfferedLoad) must not
  // change anything.
  auto params = closedParams("closed:window=2");
  params.offeredLoad = 0.0001;
  network::PhotonicNetwork slow(params);
  const auto slowMetrics = slow.run();
  params.offeredLoad = 0.02;
  network::PhotonicNetwork fast(params);
  const auto fastMetrics = fast.run();
  EXPECT_EQ(slowMetrics.packetsGenerated, fastMetrics.packetsGenerated);
  EXPECT_EQ(slowMetrics.requestsCompleted, fastMetrics.requestsCompleted);
  EXPECT_EQ(slowMetrics.latencyCyclesSum, fastMetrics.latencyCyclesSum);
}

}  // namespace
}  // namespace pnoc::workload

// Test main: plain gtest, plus the subprocess worker hook.
//
// pnoc_tests doubles as its own SubprocessBackend worker executable — the
// backend re-execs /proc/self/exe with --pnoc-worker, so the determinism
// tests (subprocess results == in-process results) run entirely against the
// binary ctest already built.
#include <gtest/gtest.h>

#include <iostream>
#include <string_view>

#include "scenario/subprocess_backend.hpp"

int main(int argc, char** argv) {
  if (argc > 1 && std::string_view(argv[1]) == pnoc::scenario::kWorkerFlag) {
    return pnoc::scenario::runWorkerLoop(std::cin, std::cout);
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}

// Determinism and activity-gating equivalence over the full system.
//
// Two guarantees the perf work must never erode:
//  1. Same seed + same parameters => bit-identical RunMetrics across runs
//     (the simulator owns its RNG; no platform or scheduling dependence).
//  2. The activity-gated engine is an optimization, not a model change:
//     gated and ungated runs produce identical metrics for any seed.
#include <gtest/gtest.h>

#include <tuple>

#include "network/network.hpp"

namespace pnoc::network {
namespace {

SimulationParameters baseParams(const char* pattern, Architecture arch, double load,
                                std::uint64_t seed, bool gating) {
  SimulationParameters params;
  params.pattern = pattern;
  params.architecture = arch;
  params.offeredLoad = load;
  params.seed = seed;
  params.warmupCycles = 200;
  params.measureCycles = 2000;
  params.activityGating = gating;
  return params;
}

struct RunOutcome {
  metrics::RunMetrics metrics;
  std::uint64_t flitsInjected = 0;
  std::uint64_t flitsEjected = 0;
  std::uint64_t occupancy = 0;
};

RunOutcome runOnce(const SimulationParameters& params) {
  PhotonicNetwork net(params);
  RunOutcome outcome;
  outcome.metrics = net.run();
  outcome.flitsInjected = net.totalFlitsInjected();
  outcome.flitsEjected = net.totalFlitsEjected();
  outcome.occupancy = net.occupancy();
  return outcome;
}

/// Every counter and every energy term must match exactly — "bit-identical",
/// not "statistically close".
void expectIdentical(const RunOutcome& a, const RunOutcome& b) {
  EXPECT_EQ(a.metrics.packetsDelivered, b.metrics.packetsDelivered);
  EXPECT_EQ(a.metrics.bitsDelivered, b.metrics.bitsDelivered);
  EXPECT_EQ(a.metrics.latencyCyclesSum, b.metrics.latencyCyclesSum);
  EXPECT_EQ(a.metrics.packetsOffered, b.metrics.packetsOffered);
  EXPECT_EQ(a.metrics.packetsRefused, b.metrics.packetsRefused);
  EXPECT_EQ(a.metrics.packetsGenerated, b.metrics.packetsGenerated);
  EXPECT_EQ(a.metrics.headRetries, b.metrics.headRetries);
  EXPECT_EQ(a.metrics.reservationsIssued, b.metrics.reservationsIssued);
  EXPECT_EQ(a.metrics.reservationFailures, b.metrics.reservationFailures);
  EXPECT_EQ(a.metrics.latencyP50(), b.metrics.latencyP50());
  EXPECT_EQ(a.metrics.latencyP99(), b.metrics.latencyP99());
  EXPECT_EQ(a.metrics.ledger.total(), b.metrics.ledger.total());
  EXPECT_EQ(a.metrics.energyPerPacketPj(), b.metrics.energyPerPacketPj());
  EXPECT_EQ(a.flitsInjected, b.flitsInjected);
  EXPECT_EQ(a.flitsEjected, b.flitsEjected);
  EXPECT_EQ(a.occupancy, b.occupancy);
}

using DeterminismParam = std::tuple<const char*, Architecture, double>;

class Determinism : public ::testing::TestWithParam<DeterminismParam> {};

TEST_P(Determinism, SameSeedSameMetricsAcrossRuns) {
  const auto& [pattern, arch, load] = GetParam();
  const auto params = baseParams(pattern, arch, load, 7, true);
  const RunOutcome first = runOnce(params);
  const RunOutcome second = runOnce(params);
  ASSERT_GT(first.metrics.packetsDelivered, 0u);  // the run does real work
  expectIdentical(first, second);
}

TEST_P(Determinism, GatedAndUngatedEnginesAreEquivalent) {
  const auto& [pattern, arch, load] = GetParam();
  for (const std::uint64_t seed : {1ull, 42ull}) {
    const RunOutcome gated = runOnce(baseParams(pattern, arch, load, seed, true));
    const RunOutcome ungated = runOnce(baseParams(pattern, arch, load, seed, false));
    ASSERT_GT(gated.metrics.packetsDelivered, 0u);
    expectIdentical(gated, ungated);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Determinism,
    ::testing::Values(
        // Low load is where gating actually parks components — 0.001 is the
        // timer-wheel regime, where cores sleep whole geometric gaps and
        // blocked routers park on drain wakes; saturated skewed traffic
        // exercises wormhole stalls, reservation retries and DBA churn with
        // most components active.
        DeterminismParam{"uniform", Architecture::kDhetpnoc, 0.001},
        DeterminismParam{"uniform", Architecture::kDhetpnoc, 0.0005},
        DeterminismParam{"uniform", Architecture::kFirefly, 0.0005},
        DeterminismParam{"skewed3", Architecture::kDhetpnoc, 0.004},
        DeterminismParam{"skewed3", Architecture::kFirefly, 0.004},
        DeterminismParam{"real-apps", Architecture::kDhetpnoc, 0.002}));

TEST_P(Determinism, ResetReuseIsBitIdenticalToFreshNetwork) {
  // The ScenarioRunner's saturation search reuses ONE built network across
  // load probes via reset(); that is only sound if reset()+run() replays a
  // fresh construction exactly.
  const auto& [pattern, arch, load] = GetParam();
  const auto params = baseParams(pattern, arch, load, 7, true);
  const RunOutcome fresh = runOnce(params);
  ASSERT_GT(fresh.metrics.packetsDelivered, 0u);

  PhotonicNetwork reused(params);
  reused.run();                 // dirty the network thoroughly
  reused.reset();
  ASSERT_EQ(reused.occupancy(), 0u)
      << "reset() must drain every buffer before the replay run";
  RunOutcome replay;
  replay.metrics = reused.run();
  replay.flitsInjected = reused.totalFlitsInjected();
  replay.flitsEjected = reused.totalFlitsEjected();
  replay.occupancy = reused.occupancy();
  expectIdentical(fresh, replay);
}

TEST(NetworkReset, LoadSweepOverOneNetworkMatchesFreshBuilds) {
  // The exact reuse pattern of ScenarioRunner::findPeakOne: retarget the
  // load, rewind, run — every point must equal a from-scratch network.
  auto params = baseParams("skewed3", Architecture::kDhetpnoc, 0.0005, 11, true);
  PhotonicNetwork reused(params);
  for (const double load : {0.0005, 0.002, 0.004, 0.001}) {
    reused.setOfferedLoad(load);
    reused.reset();
    ASSERT_EQ(reused.occupancy(), 0u) << "stale flits after reset at load " << load;
    RunOutcome sweep;
    sweep.metrics = reused.run();
    sweep.flitsInjected = reused.totalFlitsInjected();
    sweep.flitsEjected = reused.totalFlitsEjected();
    sweep.occupancy = reused.occupancy();

    auto freshParams = params;
    freshParams.offeredLoad = load;
    const RunOutcome fresh = runOnce(freshParams);
    ASSERT_GT(fresh.metrics.packetsDelivered, 0u) << "load " << load;
    expectIdentical(fresh, sweep);
  }
}

TEST(ActivityGating, ParksComponentsAtLowLoad) {
  // The point of the tentpole: at near-zero load most of the machine sleeps.
  SimulationParameters params = baseParams("uniform", Architecture::kDhetpnoc,
                                           0.0001, 3, true);
  PhotonicNetwork net(params);
  net.step(500);
  EXPECT_LT(net.engine().activeCount(), net.engine().componentCount() / 2)
      << "expected most links/routers parked at load 0.0001";
}

TEST(ActivityGating, ZeroWeightCoresParkUnderHotspot) {
  // skewed-hotspot patterns give several cores zero source weight; those
  // cores (and their idle cluster hardware) must end up parked.
  SimulationParameters params = baseParams("skewed-hotspot2", Architecture::kDhetpnoc,
                                           0.001, 3, true);
  PhotonicNetwork net(params);
  net.step(500);
  EXPECT_LT(net.engine().activeCount(), net.engine().componentCount());
}

}  // namespace
}  // namespace pnoc::network

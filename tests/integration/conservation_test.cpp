// Property tests over the full system: flit conservation, seed robustness of
// the headline comparison, and stability of the allocation safety invariant
// under live traffic.  Parameterized across patterns, architectures, loads
// and bandwidth sets.
#include <gtest/gtest.h>

#include <tuple>

#include "network/network.hpp"

namespace pnoc::network {
namespace {

using ConservationParam = std::tuple<const char*, Architecture, double, int>;

class Conservation : public ::testing::TestWithParam<ConservationParam> {};

TEST_P(Conservation, FlitsNeitherLostNorDuplicated) {
  const auto& [pattern, arch, load, set] = GetParam();
  SimulationParameters params;
  params.architecture = arch;
  params.bandwidthSet = traffic::BandwidthSet::byIndex(set);
  params.pattern = pattern;
  params.offeredLoad = load;
  params.warmupCycles = 200;
  params.measureCycles = 2500;
  params.seed = 42;
  PhotonicNetwork net(params);
  net.run();
  // Every injected flit is either delivered or still somewhere in a buffer,
  // link pipe or photonic flight — never lost, never duplicated.
  EXPECT_EQ(net.totalFlitsInjected(), net.totalFlitsEjected() + net.occupancy());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Conservation,
    ::testing::Values(
        ConservationParam{"uniform", Architecture::kFirefly, 0.0005, 1},
        ConservationParam{"uniform", Architecture::kDhetpnoc, 0.0005, 1},
        ConservationParam{"uniform", Architecture::kDhetpnoc, 0.01, 1},  // saturated
        ConservationParam{"skewed1", Architecture::kFirefly, 0.001, 1},
        ConservationParam{"skewed3", Architecture::kFirefly, 0.004, 1},  // way past knee
        ConservationParam{"skewed3", Architecture::kDhetpnoc, 0.004, 1},
        ConservationParam{"skewed2", Architecture::kDhetpnoc, 0.002, 2},
        ConservationParam{"skewed3", Architecture::kFirefly, 0.004, 3},
        ConservationParam{"skewed-hotspot2", Architecture::kDhetpnoc, 0.002, 1},
        ConservationParam{"skewed-hotspot4", Architecture::kFirefly, 0.002, 1},
        ConservationParam{"real-apps", Architecture::kDhetpnoc, 0.002, 1},
        ConservationParam{"real-apps", Architecture::kFirefly, 0.002, 3}));

// Closed-loop conservation, asserted from the CORE-side counters: CoreStats
// now counts ejected flits/packets, so the invariant can be stated entirely
// over per-core stats — injected == ejected + in-flight — without consulting
// the sinks (which is what makes it checkable per core, not just globally).
using WorkloadConservationParam = std::tuple<const char*, const char*, Architecture>;

class WorkloadConservation
    : public ::testing::TestWithParam<WorkloadConservationParam> {};

TEST_P(WorkloadConservation, CoreStatsBalanceInjectionAgainstEjection) {
  const auto& [workload, pattern, arch] = GetParam();
  SimulationParameters params;
  params.workload = workload;
  params.pattern = pattern;
  params.architecture = arch;
  params.warmupCycles = 200;
  params.measureCycles = 2500;
  params.seed = 42;
  PhotonicNetwork net(params);
  net.run();

  std::uint64_t flitsInjected = 0, flitsEjected = 0;
  std::uint64_t packetsGenerated = 0, packetsEjected = 0;
  for (CoreId core = 0; core < params.numCores; ++core) {
    const CoreStats& stats = net.core(core).stats();
    flitsInjected += stats.flitsInjected;
    flitsEjected += stats.flitsEjected;
    packetsGenerated += stats.packetsGenerated;
    packetsEjected += stats.packetsEjected;
  }
  ASSERT_GT(packetsEjected, 0u);
  EXPECT_EQ(flitsEjected, net.totalFlitsEjected());
  EXPECT_EQ(flitsInjected, flitsEjected + net.occupancy());
  // Packet-level: generated packets are ejected or still queued/in flight.
  EXPECT_GE(packetsGenerated, packetsEjected);
  // Workload mode never refuses: models check canSubmit() before drawing.
  std::uint64_t offered = 0, refused = 0;
  for (CoreId core = 0; core < params.numCores; ++core) {
    offered += net.core(core).stats().packetsOffered;
    refused += net.core(core).stats().packetsRefused;
  }
  EXPECT_EQ(refused, 0u);
  EXPECT_EQ(offered, packetsGenerated);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, WorkloadConservation,
    ::testing::Values(
        WorkloadConservationParam{"closed:window=2", "uniform", Architecture::kDhetpnoc},
        WorkloadConservationParam{"closed:window=8", "skewed3", Architecture::kFirefly},
        WorkloadConservationParam{"chain:window=2,think=10", "skewed3",
                                  Architecture::kDhetpnoc},
        WorkloadConservationParam{"closed:window=4", "real-apps",
                                  Architecture::kDhetpnoc}));

TEST(WorkloadConservationOpenLoop, CoreEjectionCountersShadowTheSinks) {
  // The satellite bugfix also holds in the classic open loop: the new
  // CoreStats ejection counters mirror the sinks exactly.
  SimulationParameters params;
  params.pattern = "skewed3";
  params.offeredLoad = 0.002;
  params.warmupCycles = 200;
  params.measureCycles = 2000;
  PhotonicNetwork net(params);
  net.run();
  std::uint64_t flitsEjected = 0;
  for (CoreId core = 0; core < params.numCores; ++core) {
    flitsEjected += net.core(core).stats().flitsEjected;
  }
  ASSERT_GT(flitsEjected, 0u);
  EXPECT_EQ(flitsEjected, net.totalFlitsEjected());
  std::uint64_t flitsInjected = 0;
  for (CoreId core = 0; core < params.numCores; ++core) {
    flitsInjected += net.core(core).stats().flitsInjected;
  }
  EXPECT_EQ(flitsInjected, flitsEjected + net.occupancy());
}

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, DhetpnocNeverLosesUnderHeavySkew) {
  // The headline comparison must not be an artifact of one RNG stream.
  SimulationParameters params;
  params.pattern = "skewed3";
  params.offeredLoad = 0.0014;  // past the Firefly knee
  params.warmupCycles = 500;
  params.measureCycles = 5000;
  params.seed = GetParam();
  params.architecture = Architecture::kFirefly;
  PhotonicNetwork firefly(params);
  const auto fireflyMetrics = firefly.run();
  params.architecture = Architecture::kDhetpnoc;
  PhotonicNetwork dhet(params);
  const auto dhetMetrics = dhet.run();
  EXPECT_GT(dhetMetrics.bitsDelivered, fireflyMetrics.bitsDelivered)
      << "seed " << GetParam();
  EXPECT_LT(dhetMetrics.energyPerPacketPj(), fireflyMetrics.energyPerPacketPj())
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep, ::testing::Values(1u, 7u, 1234u, 987654321u));

TEST(AllocationSafety, HoldsUnderLiveTraffic) {
  // The DBA's central invariant — no wavelength double-owned, token and map
  // in agreement — checked while real traffic and the token ring run.
  SimulationParameters params;
  params.pattern = "skewed3";
  params.offeredLoad = 0.002;
  PhotonicNetwork net(params);
  auto* policy = dynamic_cast<DhetpnocPolicy*>(&net.policy());
  ASSERT_NE(policy, nullptr);
  for (int chunk = 0; chunk < 20; ++chunk) {
    net.step(100);
    const auto& map = policy->allocationMap();
    std::uint32_t owned = 0;
    for (ClusterId c = 0; c < 16; ++c) {
      owned += map.ownedCount(c);
      EXPECT_GE(policy->controller(c).ownedCount(), 1u);
    }
    EXPECT_EQ(owned + map.freeCount(), map.totalWavelengths());
  }
}

TEST(AllocationSafety, SurvivesRepeatedRemapping) {
  // Oscillate demands between skewed3 and uniform while traffic flows.
  SimulationParameters params;
  params.pattern = "skewed3";
  params.offeredLoad = 0.001;
  PhotonicNetwork net(params);
  auto* policy = dynamic_cast<DhetpnocPolicy*>(&net.policy());
  ASSERT_NE(policy, nullptr);
  const auto uniform = traffic::makePattern("uniform", net.topology(),
                                            params.bandwidthSet);
  const auto skewed = traffic::makePattern("skewed3", net.topology(),
                                           params.bandwidthSet);
  for (int round = 0; round < 10; ++round) {
    policy->publishDemands(round % 2 == 0 ? *uniform : *skewed);
    net.step(50);
    const auto& map = policy->allocationMap();
    std::uint32_t owned = 0;
    for (ClusterId c = 0; c < 16; ++c) owned += map.ownedCount(c);
    EXPECT_EQ(owned + map.freeCount(), map.totalWavelengths()) << "round " << round;
  }
  // Flit conservation still holds after all the churn.
  EXPECT_EQ(net.totalFlitsInjected(), net.totalFlitsEjected() + net.occupancy());
}

}  // namespace
}  // namespace pnoc::network

// The timer-wheel engine's two load-bearing equivalence claims:
//
//  1. Geometric arrival pre-scheduling is LAW-IDENTICAL to per-cycle
//     Bernoulli injection — in fact bit-identical, because each gap is drawn
//     by replaying the same per-cycle trials against the same per-core RNG
//     stream.  An external replay of those trials must predict every offer
//     cycle exactly, and the measured gaps must match the geometric law.
//
//  2. The whole engine is BIT-IDENTICAL to the pre-wheel engine: the golden
//     record strings below were captured from the per-cycle Bernoulli
//     engine before the timer wheel landed (same specs, byte for byte,
//     including full saturation searches).  They pin the simulation's
//     numerics — any model drift, RNG reordering or metrics change shows up
//     as a string mismatch here.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "network/network.hpp"
#include "scenario/json_record.hpp"
#include "scenario/scenario_runner.hpp"
#include "scenario/scenario_spec.hpp"
#include "sim/rng.hpp"

namespace pnoc::network {
namespace {

SimulationParameters lowLoadParams(double load, std::uint64_t seed) {
  SimulationParameters params;
  params.pattern = "uniform";
  params.architecture = Architecture::kDhetpnoc;
  params.offeredLoad = load;
  params.seed = seed;
  params.warmupCycles = 200;
  params.measureCycles = 2000;
  return params;
}

/// Offer cycles per core, observed by stepping the network one cycle at a
/// time and watching each core's offered-packet counter.
std::vector<std::vector<Cycle>> observeOffers(PhotonicNetwork& net, Cycle cycles) {
  const std::uint32_t numCores = net.params().numCores;
  std::vector<std::vector<Cycle>> offers(numCores);
  std::vector<std::uint64_t> seen(numCores, 0);
  for (Cycle cycle = 0; cycle < cycles; ++cycle) {
    net.step(1);
    for (CoreId core = 0; core < numCores; ++core) {
      const std::uint64_t count = net.core(core).stats().packetsOffered;
      EXPECT_LE(count, seen[core] + 1) << "two offers in one cycle";
      if (count != seen[core]) {
        offers[core].push_back(cycle);
        seen[core] = count;
      }
    }
  }
  return offers;
}

TEST(GeometricArrivals, BernoulliReplayPredictsEveryOfferCycle) {
  const double load = 0.002;  // uniform weights: per-core probability == load
  const Cycle kCycles = 3000;
  auto params = lowLoadParams(load, 11);
  PhotonicNetwork net(params);
  const auto offers = observeOffers(net, kCycles);

  // No refusals allowed in the window: a refused offer skips the destination
  // draw, which the external replay below cannot see.
  for (CoreId core = 0; core < params.numCores; ++core) {
    ASSERT_EQ(net.core(core).stats().packetsRefused, 0u) << "core " << core;
  }

  // Replay: the network seeds one splitter stream and splits once per core
  // in core order; per-cycle Bernoulli trials plus a destination draw per
  // success must then reproduce the offer cycles exactly.
  sim::Rng seeder(params.seed);
  std::uint64_t totalOffers = 0;
  for (CoreId core = 0; core < params.numCores; ++core) {
    sim::Rng rng = seeder.split();
    std::vector<Cycle> predicted;
    for (Cycle cycle = 0; cycle < kCycles; ++cycle) {
      if (!rng.nextBool(load)) continue;
      predicted.push_back(cycle);
      net.pattern().sampleDestination(core, rng);
    }
    // The engine pre-draws beyond the horizon, so it may know about offers
    // the replay has not reached; compare only the observed window.
    if (predicted.size() > offers[core].size()) {
      predicted.resize(offers[core].size());
    }
    EXPECT_EQ(offers[core], predicted) << "core " << core;
    totalOffers += offers[core].size();
  }
  EXPECT_GT(totalOffers, 200u);  // the window exercised real traffic
}

TEST(GeometricArrivals, InterArrivalGapsMatchGeometricLaw) {
  // At probability p the gap between consecutive offers is geometric:
  // mean 1/p, variance (1-p)/p^2.  Pool the gaps of all 64 cores.
  for (const double p : {0.05, 0.01}) {
    auto params = lowLoadParams(p, 23);
    PhotonicNetwork net(params);
    const Cycle kCycles = p >= 0.05 ? 4000 : 12000;
    const auto offers = observeOffers(net, kCycles);
    std::vector<double> gaps;
    for (const auto& cycles : offers) {
      for (std::size_t i = 1; i < cycles.size(); ++i) {
        gaps.push_back(static_cast<double>(cycles[i] - cycles[i - 1]));
      }
    }
    ASSERT_GT(gaps.size(), 2000u) << "p " << p;
    double sum = 0.0;
    for (const double gap : gaps) sum += gap;
    const double mean = sum / static_cast<double>(gaps.size());
    double varSum = 0.0;
    for (const double gap : gaps) varSum += (gap - mean) * (gap - mean);
    const double variance = varSum / static_cast<double>(gaps.size() - 1);

    const double expectedMean = 1.0 / p;
    const double expectedVariance = (1.0 - p) / (p * p);
    EXPECT_NEAR(mean, expectedMean, 0.05 * expectedMean) << "p " << p;
    EXPECT_NEAR(variance, expectedVariance, 0.15 * expectedVariance) << "p " << p;
  }
}

// --- pre-wheel golden records -----------------------------------------------
//
// Captured from the per-cycle Bernoulli engine at the commit before the
// timer wheel (fixed specs below, default gating).  recordRun/recordPeak
// serialize with shortest-round-trip doubles, so string equality IS
// bit-identity of every metric in the record.

struct GoldenRun {
  const char* arch;
  const char* pattern;
  double load;
  std::uint64_t seed;
  const char* record;
};

std::string runRecordFor(const GoldenRun& golden) {
  scenario::ScenarioSpec spec;
  spec.set("arch", golden.arch);
  spec.set("pattern", golden.pattern);
  spec.params.offeredLoad = golden.load;
  spec.params.seed = golden.seed;
  spec.params.warmupCycles = 200;
  spec.params.measureCycles = 2000;
  const metrics::RunMetrics metrics = scenario::runScenario(spec);
  scenario::JsonRecorder scratch("scratch");
  return scenario::recordRun(scratch, spec, metrics).serialize();
}

TEST(PreWheelGoldens, FixedLoadRunRecordsAreByteIdentical) {
  const GoldenRun goldens[] = {
      {"dhetpnoc", "uniform", 0.001, 7,
       R"({"name":"run","arch":"dhetpnoc","pattern":"uniform","bandwidth_set":1,"seed":7,"load":0.001,"gbps":294.39999999999998,"acceptance":1,"avg_latency_cycles":195.56521739130434,"energy_per_packet_pj":4924.5522119565212})"},
      {"firefly", "uniform", 0.0005, 7,
       R"({"name":"run","arch":"firefly","pattern":"uniform","bandwidth_set":1,"seed":7,"load":0.00050000000000000001,"gbps":158.72,"acceptance":1.0163934426229508,"avg_latency_cycles":159.85483870967741,"energy_per_packet_pj":5398.6834526209641})"},
      {"dhetpnoc", "skewed3", 0.004, 7,
       R"({"name":"run","arch":"dhetpnoc","pattern":"skewed3","bandwidth_set":1,"seed":7,"load":0.0040000000000000001,"gbps":522.2399999999999,"acceptance":0.39921722113502933,"avg_latency_cycles":660.62745098039215,"energy_per_packet_pj":6407.4191636029445})"},
      {"dhetpnoc", "skewed-hotspot2", 0.001, 3,
       R"({"name":"run","arch":"dhetpnoc","pattern":"skewed-hotspot2","bandwidth_set":1,"seed":3,"load":0.001,"gbps":261.11999999999995,"acceptance":0.9107142857142857,"avg_latency_cycles":284.50980392156862,"energy_per_packet_pj":5404.3049540441352})"},
  };
  for (const GoldenRun& golden : goldens) {
    EXPECT_EQ(runRecordFor(golden), golden.record)
        << golden.arch << "/" << golden.pattern;
  }
}

TEST(PreWheelGoldens, SaturationSweepPeakRecordsAreByteIdentical) {
  // Full saturation searches (ramp + bisection over one reset-reused
  // network): the committed BENCH-record expectations from the pre-wheel
  // engine must reproduce byte for byte.
  struct GoldenPeak {
    const char* arch;
    const char* pattern;
    std::uint64_t seed;
    const char* record;
  };
  const GoldenPeak goldens[] = {
      {"dhetpnoc", "uniform", 7,
       R"({"name":"peak","arch":"dhetpnoc","pattern":"uniform","bandwidth_set":1,"seed":7,"offered_load":0.00037500000000000001,"gbps":119.46666666666665,"energy_per_packet_pj":5930.9408705357137,"points_evaluated":6})"},
      {"firefly", "skewed3", 7,
       R"({"name":"peak","arch":"firefly","pattern":"skewed3","bandwidth_set":1,"seed":7,"offered_load":0.00022499999999999999,"gbps":76.799999999999983,"energy_per_packet_pj":7136.2172916666641,"points_evaluated":5})"},
  };
  for (const GoldenPeak& golden : goldens) {
    scenario::ScenarioSpec spec;
    spec.set("arch", golden.arch);
    spec.set("pattern", golden.pattern);
    spec.params.seed = golden.seed;
    spec.params.warmupCycles = 100;
    spec.params.measureCycles = 600;
    const metrics::PeakSearchResult result = scenario::findScenarioPeak(spec);
    scenario::JsonRecorder scratch("scratch");
    const std::string record =
        scenario::recordPeak(scratch, scenario::ScenarioPeak{spec, result}).serialize();
    EXPECT_EQ(record, golden.record) << golden.arch << "/" << golden.pattern;
  }
}

TEST(SaturationGoldens, HighLoadRunRecordsAreByteIdenticalToPrePartitionEngine) {
  // Captured from the engine before the SoA hot-state split and photonic
  // reservation parking landed, at loads deep into saturation — the regime
  // where the compact-scan transmit/ejection paths and the parking replay
  // actually run.  String equality pins every metric byte.
  const GoldenRun goldens[] = {
      {"dhetpnoc", "uniform", 0.01, 7,
       R"({"name":"run","arch":"dhetpnoc","pattern":"uniform","bandwidth_set":1,"seed":7,"load":0.01,"gbps":911.3599999999999,"acceptance":0.29741019214703424,"avg_latency_cycles":735.38764044943821,"energy_per_packet_pj":8492.4758953651763})"},
      {"dhetpnoc", "skewed3", 0.02, 7,
       R"({"name":"run","arch":"dhetpnoc","pattern":"skewed3","bandwidth_set":1,"seed":7,"load":0.02,"gbps":724.4799999999999,"acceptance":0.10707529322739312,"avg_latency_cycles":829.41342756183747,"energy_per_packet_pj":7174.4117237190885})"},
      {"firefly", "uniform", 0.01, 7,
       R"({"name":"run","arch":"firefly","pattern":"uniform","bandwidth_set":1,"seed":7,"load":0.01,"gbps":916.4799999999999,"acceptance":0.29908103592314117,"avg_latency_cycles":724.96648044692733,"energy_per_packet_pj":8447.0345338687239})"},
      {"dhetpnoc", "skewed-hotspot2", 0.02, 3,
       R"({"name":"run","arch":"dhetpnoc","pattern":"skewed-hotspot2","bandwidth_set":1,"seed":3,"load":0.02,"gbps":701.43999999999983,"acceptance":0.10686427457098284,"avg_latency_cycles":835.37956204379566,"energy_per_packet_pj":7294.3761792883288})"},
  };
  for (const GoldenRun& golden : goldens) {
    EXPECT_EQ(runRecordFor(golden), golden.record)
        << golden.arch << "/" << golden.pattern << "@" << golden.load;
  }
}

TEST(SaturationGoldens, PeakRecordsAreByteIdenticalToPrePartitionEngine) {
  struct GoldenPeak {
    const char* arch;
    const char* pattern;
    std::uint64_t seed;
    const char* record;
  };
  const GoldenPeak goldens[] = {
      {"dhetpnoc", "skewed3", 7,
       R"({"name":"peak","arch":"dhetpnoc","pattern":"skewed3","bandwidth_set":1,"seed":7,"offered_load":0.00020000000000000001,"gbps":68.266666666666652,"energy_per_packet_pj":7177.7525000000005,"points_evaluated":5})"},
      {"firefly", "uniform", 7,
       R"({"name":"peak","arch":"firefly","pattern":"uniform","bandwidth_set":1,"seed":7,"offered_load":0.00037500000000000001,"gbps":119.46666666666665,"energy_per_packet_pj":5920.6208705357149,"points_evaluated":6})"},
  };
  for (const GoldenPeak& golden : goldens) {
    scenario::ScenarioSpec spec;
    spec.set("arch", golden.arch);
    spec.set("pattern", golden.pattern);
    spec.params.seed = golden.seed;
    spec.params.warmupCycles = 100;
    spec.params.measureCycles = 600;
    const metrics::PeakSearchResult result = scenario::findScenarioPeak(spec);
    scenario::JsonRecorder scratch("scratch");
    const std::string record =
        scenario::recordPeak(scratch, scenario::ScenarioPeak{spec, result}).serialize();
    EXPECT_EQ(record, golden.record) << golden.arch << "/" << golden.pattern;
  }
}

TEST(TimerParking, CoresParkBetweenArrivalsAtNonzeroLoad) {
  // The tentpole claim: at low-but-nonzero offered load the injection side
  // sleeps between pre-scheduled arrivals instead of flipping a per-cycle
  // coin, so the park rate is high and timers demonstrably fire.
  auto params = lowLoadParams(0.001, 3);
  PhotonicNetwork net(params);
  net.step(5000);
  const sim::EngineStats& stats = net.engine().stats();
  EXPECT_GT(stats.timersScheduled, 0u);
  EXPECT_GT(stats.timersFired, 0u);
  EXPECT_GT(stats.parkRate(net.engine().componentCount()), 0.85)
      << "expected cores, routers and links parked most cycles at load 0.001";
  // Fewer than the 64 cores alone are awake on an average cycle.
  EXPECT_LT(static_cast<double>(stats.componentSteps) / static_cast<double>(stats.cycles),
            64.0);
}

TEST(TimerParking, RedundantLoadRetargetKeepsCoresParked) {
  // setOfferedLoad() with an unchanged value must be a no-op: saturation
  // sweeps re-announce the same point and must not wake 64 parked cores
  // (and a real change must).
  auto params = lowLoadParams(0.0001, 3);
  PhotonicNetwork net(params);
  net.step(600);
  // Components stepped in one cycle == the active count during it (cores
  // that wake, redraw and re-park within a cycle still get stepped once).
  const auto stepsInNextCycle = [&net] {
    const std::uint64_t before = net.engine().stats().componentSteps;
    net.step(1);
    return net.engine().stats().componentSteps - before;
  };
  const std::uint64_t parkedBaseline = stepsInNextCycle();
  ASSERT_LT(parkedBaseline, 20u);  // nearly everything asleep at 1e-4

  net.setOfferedLoad(params.offeredLoad);  // identical: no wake
  EXPECT_LT(stepsInNextCycle(), 20u);

  net.setOfferedLoad(params.offeredLoad * 2);  // real change: all cores wake
  EXPECT_GE(stepsInNextCycle(), 64u);
}

}  // namespace
}  // namespace pnoc::network

// Photonic reservation parking vs poll-mode: the activity-gated engine may
// park blocked photonic routers (failed reservations, wormhole bubbles,
// stalled down links) and replay their per-cycle counters on wake.  These
// tests pin the tentpole equivalence claim at system level: every metric the
// simulator reports — the full RunMetrics wire serialization, the per-router
// reservation/busy counters and the BENCH record bytes — must be identical
// with gating on and off, in exactly the regimes where parking engages.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>

#include "network/network.hpp"
#include "scenario/json_record.hpp"
#include "scenario/scenario_runner.hpp"
#include "scenario/scenario_spec.hpp"
#include "scenario/wire.hpp"

namespace pnoc::network {
namespace {

/// Sets an environment variable for the lifetime of one test body (the
/// photonic deny fault hook is read at network construction).
class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    ::setenv(name, value, 1);
  }
  ~EnvGuard() { ::unsetenv(name_); }

 private:
  const char* name_;
};

SimulationParameters baseParams(const char* pattern, double load,
                                std::uint64_t seed) {
  SimulationParameters params;
  params.pattern = pattern;
  params.architecture = Architecture::kDhetpnoc;
  params.offeredLoad = load;
  params.seed = seed;
  params.warmupCycles = 200;
  params.measureCycles = 1500;
  return params;
}

struct Outcome {
  std::string metricsJson;   // full RunMetrics wire serialization
  std::string routerCounts;  // per-cluster photonic reservation/busy counters
  std::uint64_t reservationFailures = 0;
  std::uint64_t componentSteps = 0;
};

Outcome runWith(SimulationParameters params, bool gating) {
  params.activityGating = gating;
  PhotonicNetwork net(params);
  const metrics::RunMetrics metrics = net.run();
  Outcome out;
  out.metricsJson = scenario::wire::toJson(metrics);
  out.reservationFailures = metrics.reservationFailures;
  out.componentSteps = net.engine().stats().componentSteps;
  std::ostringstream counts;
  for (ClusterId cluster = 0; cluster < params.numClusters(); ++cluster) {
    const PhotonicRouterStats& stats = net.photonicRouter(cluster).stats();
    counts << cluster << ":" << stats.reservationsIssued << "/"
           << stats.reservationFailures << "/" << stats.packetsTransmitted
           << "/" << stats.bitsTransmitted << "/" << stats.transmitBusyCycles
           << "/" << stats.reservationCyclesSpent << "\n";
  }
  out.routerCounts = counts.str();
  return out;
}

void expectEquivalent(const Outcome& gated, const Outcome& polled) {
  EXPECT_EQ(gated.metricsJson, polled.metricsJson);
  EXPECT_EQ(gated.routerCounts, polled.routerCounts);
  EXPECT_LT(gated.componentSteps, polled.componentSteps)
      << "gating never parked anything — the regime did not engage";
}

TEST(ParkingEquivalence, ReservationDenyStormMatchesPollMode) {
  // Fault-hook storm: cluster 1 refuses every reservation for most of the
  // run, so sources retry (and, gated, park-and-replay) in bulk.
  EnvGuard deny("PNOC_TEST_PHOTONIC", "deny@1:until=1200");
  const auto params = baseParams("uniform", 0.004, 7);
  const Outcome gated = runWith(params, true);
  const Outcome polled = runWith(params, false);
  ASSERT_GT(gated.reservationFailures, 100u) << "storm never happened";
  expectEquivalent(gated, polled);
}

TEST(ParkingEquivalence, SaturatedHotspotMatchesPollMode) {
  // Natural reservation failures: two hot destination clusters at a load far
  // beyond their receive-VC turnover (skewed3 spreads wide enough that the
  // DBA keeps up; the two-cluster hotspot reliably exhausts VCs).
  const auto params = baseParams("skewed-hotspot2", 0.02, 7);
  const Outcome gated = runWith(params, true);
  const Outcome polled = runWith(params, false);
  ASSERT_GT(gated.reservationFailures, 0u) << "hotspot never saturated";
  expectEquivalent(gated, polled);
}

TEST(ParkingEquivalence, LowLoadBubblesMatchPollMode) {
  // Low load: long idle stretches plus wormhole bubbles when the electrical
  // feed trails the photonic drain rate mid-packet.
  const Outcome gated = runWith(baseParams("uniform", 0.001, 3), true);
  const Outcome polled = runWith(baseParams("uniform", 0.001, 3), false);
  expectEquivalent(gated, polled);
}

TEST(ParkingEquivalence, BenchRecordBytesMatchPollMode) {
  // The CI perf gate diffs BENCH record strings; gating must not perturb a
  // single byte of them.  Same storm-heavy config as the deny test.
  auto recordFor = [](const char* gating) {
    scenario::ScenarioSpec spec;
    spec.set("arch", "dhetpnoc");
    spec.set("pattern", "skewed3");
    spec.set("load", "0.004");
    spec.set("gating", gating);
    spec.params.seed = 7;
    spec.params.warmupCycles = 200;
    spec.params.measureCycles = 1500;
    const metrics::RunMetrics metrics = scenario::runScenario(spec);
    scenario::JsonRecorder scratch("scratch");
    return scenario::recordRun(scratch, spec, metrics).serialize();
  };
  EXPECT_EQ(recordFor("true"), recordFor("false"));
}

}  // namespace
}  // namespace pnoc::network

// Integration tests pinning the paper's headline qualitative results
// (Sections 3.4.1-3.4.3).  These run the full cycle-accurate system; loads
// are chosen near the Firefly saturation knee so the comparisons are at the
// operating points the paper reports.
#include <gtest/gtest.h>

#include "network/network.hpp"

namespace pnoc::network {
namespace {

metrics::RunMetrics runOnce(Architecture arch, const std::string& pattern, double load,
                            int set = 1, std::uint64_t seed = 7) {
  SimulationParameters params;
  params.architecture = arch;
  params.bandwidthSet = traffic::BandwidthSet::byIndex(set);
  params.pattern = pattern;
  params.offeredLoad = load;
  params.warmupCycles = 1000;   // Table 3-3: 1000 reset cycles
  params.measureCycles = 10000;  // Table 3-3: 10000 cycles
  params.seed = seed;
  PhotonicNetwork net(params);
  return net.run();
}

TEST(PaperShape, UniformTrafficArchitecturesCoincide) {
  // Fig 3-3: "with uniform traffic the d-HetPNoC and the baseline
  // crossbar-based Firefly performs similarly ... as both architectures
  // provide the exact same bandwidth between all pairs of clusters."
  const auto firefly = runOnce(Architecture::kFirefly, "uniform", 0.001);
  const auto dhet = runOnce(Architecture::kDhetpnoc, "uniform", 0.001);
  EXPECT_EQ(firefly.bitsDelivered, dhet.bitsDelivered);
  EXPECT_EQ(firefly.latencyCyclesSum, dhet.latencyCyclesSum);
  // Packet energy differs only by the reservation identifier overhead
  // (< 1%), mirroring the paper's ~0.1% observation.
  EXPECT_NEAR(dhet.energyPerPacketPj() / firefly.energyPerPacketPj(), 1.0, 0.01);
}

TEST(PaperShape, SkewedTrafficDhetpnocSustainsHigherBandwidth) {
  // Fig 3-3: the d-HetPNoC outperforms Firefly increasingly with skew.  At a
  // load past Firefly's knee, Firefly sheds the hot flows while d-HetPNoC
  // still delivers the offered mix.
  const auto firefly = runOnce(Architecture::kFirefly, "skewed3", 0.0012);
  const auto dhet = runOnce(Architecture::kDhetpnoc, "skewed3", 0.0012);
  EXPECT_GT(dhet.bitsDelivered, firefly.bitsDelivered);
  EXPECT_GT(dhet.acceptance(), firefly.acceptance());
}

TEST(PaperShape, AdvantageGrowsWithSkew) {
  // Fig 3-3's progression: gain(skewed3) > gain(skewed1) > gain(uniform)=0.
  const double load = 0.0012;
  double gain[4] = {0, 0, 0, 0};
  const std::string patterns[4] = {"uniform", "skewed1", "skewed2", "skewed3"};
  for (int i = 0; i < 4; ++i) {
    const auto firefly = runOnce(Architecture::kFirefly, patterns[i], load);
    const auto dhet = runOnce(Architecture::kDhetpnoc, patterns[i], load);
    gain[i] = static_cast<double>(dhet.bitsDelivered) /
                  static_cast<double>(firefly.bitsDelivered) -
              1.0;
  }
  EXPECT_NEAR(gain[0], 0.0, 1e-9);  // identical under uniform
  EXPECT_GT(gain[3], gain[1]);
  EXPECT_GT(gain[3], 0.02);
}

TEST(PaperShape, SkewedTrafficDhetpnocUsesLessEnergyPerMessage) {
  // Fig 3-4: congestion keeps Firefly's flits in buffers longer, raising its
  // packet energy; d-HetPNoC is lower under skew.
  const auto firefly = runOnce(Architecture::kFirefly, "skewed3", 0.0012);
  const auto dhet = runOnce(Architecture::kDhetpnoc, "skewed3", 0.0012);
  EXPECT_LT(dhet.energyPerPacketPj(), firefly.energyPerPacketPj());
  // The difference must come from the buffer term, not the link terms.
  using photonic::EnergyCategory;
  const double fireflyBufferPerPkt =
      firefly.ledger.of(EnergyCategory::kPhotonicBuffer) / firefly.packetsDelivered;
  const double dhetBufferPerPkt =
      dhet.ledger.of(EnergyCategory::kPhotonicBuffer) / dhet.packetsDelivered;
  EXPECT_LT(dhetBufferPerPkt, fireflyBufferPerPkt);
}

TEST(PaperShape, HotspotCaseStudiesFavorDhetpnoc) {
  // Fig 3-5: "In all the cases the peak bandwidth of the d-HetPNoC is better
  // than the Firefly architecture."
  for (const std::string pattern : {"skewed-hotspot1", "skewed-hotspot4"}) {
    const auto firefly = runOnce(Architecture::kFirefly, pattern, 0.0012);
    const auto dhet = runOnce(Architecture::kDhetpnoc, pattern, 0.0012);
    EXPECT_GE(dhet.bitsDelivered, firefly.bitsDelivered) << pattern;
  }
}

TEST(PaperShape, RealApplicationTrafficFavorsDhetpnoc) {
  const auto firefly = runOnce(Architecture::kFirefly, "real-apps", 0.0012);
  const auto dhet = runOnce(Architecture::kDhetpnoc, "real-apps", 0.0012);
  EXPECT_GT(dhet.bitsDelivered, firefly.bitsDelivered);
}

TEST(PaperShape, HigherBandwidthSetsDeliverMore) {
  // Figures 3-7/3-10: peak bandwidth grows strongly with the wavelength
  // budget for both architectures.
  for (const auto arch : {Architecture::kFirefly, Architecture::kDhetpnoc}) {
    const auto set1 = runOnce(arch, "skewed3", 0.004, 1);
    const auto set3 = runOnce(arch, "skewed3", 0.004, 3);
    EXPECT_GT(set3.bitsDelivered, 2u * set1.bitsDelivered) << toString(arch);
  }
}

TEST(PaperShape, ReservationTimingOnlyHurtsSetThree) {
  // Section 3.4.1.1: piggybacking identifiers costs nothing for set 1 and a
  // second cycle for set 3.  Under uniform traffic (identical allocation)
  // set-1 latencies coincide exactly, while set-3 d-HetPNoC pays a small
  // extra reservation latency.
  const auto f1 = runOnce(Architecture::kFirefly, "uniform", 0.0008, 1);
  const auto d1 = runOnce(Architecture::kDhetpnoc, "uniform", 0.0008, 1);
  EXPECT_EQ(f1.latencyCyclesSum, d1.latencyCyclesSum);
  const auto f3 = runOnce(Architecture::kFirefly, "uniform", 0.0008, 3);
  const auto d3 = runOnce(Architecture::kDhetpnoc, "uniform", 0.0008, 3);
  EXPECT_GE(d3.avgLatencyCycles(), f3.avgLatencyCycles());
}

}  // namespace
}  // namespace pnoc::network

// PatternRegistry tests: spec grammar, aliases, option rejection,
// self-registration, and a golden table pinning wavelengthDemand /
// bandwidthClass for every registered built-in family (so a refactor that
// shifts any demand table is caught, and a new family must extend the
// golden table here).
#include "traffic/registry.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "traffic/hotspot.hpp"
#include "traffic/synthetic.hpp"
#include "traffic/uniform.hpp"

namespace pnoc::traffic {
namespace {

const noc::ClusterTopology& topo() {
  static noc::ClusterTopology topology;  // 64 cores / 16 clusters
  return topology;
}

TEST(PatternSpecGrammar, ParsesFamilyAndOptions) {
  const auto bare = parsePatternSpec("uniform");
  EXPECT_EQ(bare.family, "uniform");
  EXPECT_TRUE(bare.options.unconsumedKeys().empty());

  const auto parameterized = parsePatternSpec("hotspot:frac=0.3,hot=5");
  EXPECT_EQ(parameterized.family, "hotspot");
  EXPECT_DOUBLE_EQ(parameterized.options.getDouble("frac", 0.0), 0.3);
  EXPECT_EQ(parameterized.options.getInt("hot", 0), 5);
}

TEST(PatternSpecGrammar, RejectsMalformedSpecs) {
  EXPECT_THROW(parsePatternSpec(""), std::invalid_argument);
  EXPECT_THROW(parsePatternSpec("hotspot:"), std::invalid_argument);
  EXPECT_THROW(parsePatternSpec("hotspot:frac"), std::invalid_argument);
  EXPECT_THROW(parsePatternSpec("hotspot:=0.3"), std::invalid_argument);
  EXPECT_THROW(parsePatternSpec("hotspot:frac=0.3,,hot=1"), std::invalid_argument);
}

TEST(PatternRegistry, BuiltinFamiliesAreRegistered) {
  auto& registry = PatternRegistry::global();
  for (const char* family : {"uniform", "skewed", "skewed-hotspot", "hotspot",
                             "real-apps", "transpose", "tornado", "bitcomp",
                             "permutation", "matrix"}) {
    EXPECT_TRUE(registry.contains(family)) << family;
  }
}

TEST(PatternRegistry, LegacyAliasesStillBuildThePaperPatterns) {
  auto& registry = PatternRegistry::global();
  for (const std::string name :
       {"uniform", "skewed1", "skewed2", "skewed3", "skewed-hotspot1", "skewed-hotspot2",
        "skewed-hotspot3", "skewed-hotspot4", "real-apps"}) {
    const auto pattern = registry.make(name, topo(), BandwidthSet::set1());
    ASSERT_NE(pattern, nullptr) << name;
    EXPECT_EQ(pattern->name(), name);
  }
}

TEST(PatternRegistry, UnknownFamilyAndUnknownOptionAreRejected) {
  auto& registry = PatternRegistry::global();
  EXPECT_THROW(registry.make("bogus", topo(), BandwidthSet::set1()),
               std::invalid_argument);
  EXPECT_THROW(registry.make("skewed9", topo(), BandwidthSet::set1()),
               std::invalid_argument);
  // Known family, typo'd option: must fail loudly, not silently default.
  EXPECT_THROW(registry.make("hotspot:fraction=0.3", topo(), BandwidthSet::set1()),
               std::invalid_argument);
  EXPECT_THROW(registry.make("skewed:level=9", topo(), BandwidthSet::set1()),
               std::invalid_argument);
  EXPECT_THROW(registry.make("hotspot:frac=1.5", topo(), BandwidthSet::set1()),
               std::invalid_argument);
  EXPECT_THROW(registry.make("tornado:offset=16", topo(), BandwidthSet::set1()),
               std::invalid_argument);
}

TEST(PatternRegistry, ParameterizedHotspotSpecWorks) {
  auto& registry = PatternRegistry::global();
  const auto pattern =
      registry.make("hotspot:frac=0.3,hot=5,base=skewed2", topo(), BandwidthSet::set1());
  const auto* overlay = dynamic_cast<const HotspotOverlayPattern*>(pattern.get());
  ASSERT_NE(overlay, nullptr);
  EXPECT_DOUBLE_EQ(overlay->fraction(), 0.3);
  EXPECT_EQ(overlay->hotspotCore(), 5u);
  EXPECT_EQ(overlay->base().name(), "skewed2");

  // The hotspot core receives ~frac of draws plus its base share.
  sim::Rng rng(3);
  int hits = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    hits += (pattern->sampleDestination(20, rng) == 5) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.30 + 0.70 / 63.0, 0.01);
}

TEST(PatternRegistry, ParenthesizedBaseSpecKeepsNestedOptions) {
  auto& registry = PatternRegistry::global();
  // The nested spec's own comma-separated options must reach the base
  // factory, not be split off and consumed by the outer family.
  const auto pattern = registry.make("hotspot:frac=0.2,base=(skewed-hotspot:variant=2,hot=5)",
                                     topo(), BandwidthSet::set1());
  const auto* overlay = dynamic_cast<const HotspotOverlayPattern*>(pattern.get());
  ASSERT_NE(overlay, nullptr);
  EXPECT_EQ(overlay->hotspotCore(), 0u);  // outer default
  const auto* base = dynamic_cast<const SkewedHotspotPattern*>(&overlay->base());
  ASSERT_NE(base, nullptr);
  EXPECT_EQ(base->hotspotCore(), 5u);  // nested hot=5 landed on the base
  EXPECT_EQ(base->name(), "skewed-hotspot2");

  EXPECT_THROW(registry.make("hotspot:base=(uniform", topo(), BandwidthSet::set1()),
               std::invalid_argument);
  EXPECT_THROW(registry.make("hotspot:base=uniform)", topo(), BandwidthSet::set1()),
               std::invalid_argument);
}

TEST(PatternRegistry, SelfRegistrationExtendsTheRegistry) {
  auto& registry = PatternRegistry::global();
  const bool added = registry.add(PatternFamily{
      "test-only-family", "registered by registry_test", "",
      [](const PatternOptions&, const noc::ClusterTopology& topology,
         const BandwidthSet& set) -> std::unique_ptr<TrafficPattern> {
        return std::make_unique<UniformRandomPattern>(topology, set);
      }});
  EXPECT_TRUE(added);
  EXPECT_NE(registry.make("test-only-family", topo(), BandwidthSet::set1()), nullptr);
  // Duplicate names are refused.
  EXPECT_FALSE(registry.add(PatternFamily{
      "uniform", "", "",
      [](const PatternOptions&, const noc::ClusterTopology& topology,
         const BandwidthSet& set) -> std::unique_ptr<TrafficPattern> {
        return std::make_unique<UniformRandomPattern>(topology, set);
      }}));
}

TEST(PatternRegistry, HelpTextListsEveryFamily) {
  const std::string help = PatternRegistry::global().helpText();
  for (const PatternFamily* family : PatternRegistry::global().families()) {
    EXPECT_NE(help.find(family->name), std::string::npos) << family->name;
  }
  EXPECT_NE(help.find("skewed3=skewed:level=3"), std::string::npos);
}

// --- golden demand/class table ----------------------------------------------
//
// For every built-in family (default options, BW set 1, 64 cores / 16
// clusters): pin wavelengthDemand and bandwidthClass on representative
// (src, dst) cluster pairs.  Values were derived from the pattern
// definitions; see each family's header for the underlying rule.

struct GoldenEntry {
  ClusterId src;
  ClusterId dst;
  std::uint32_t demand;
  std::uint32_t bandwidthClass;
};

TEST(PatternRegistryGolden, DemandsAndClassesArePinnedForEveryFamily) {
  auto& registry = PatternRegistry::global();
  const auto set = BandwidthSet::set1();

  const std::map<std::string, std::vector<GoldenEntry>> golden = {
      // Even split: 64/16 = 4 lambdas everywhere; 4 lambdas = the 50 Gb/s
      // class (index 2).
      {"uniform", {{0, 1, 4, 2}, {3, 9, 4, 2}, {15, 0, 4, 2}}},
      // Cluster class = cluster % 4 -> demands {1,2,4,8}, class = own class.
      {"skewed", {{0, 1, 1, 0}, {1, 0, 2, 1}, {2, 0, 4, 2}, {3, 0, 8, 3}}},
      // Hotspot overlays keep the base skewed demands (extra load, not extra
      // provisioned bandwidth).
      {"skewed-hotspot", {{0, 1, 1, 0}, {1, 0, 2, 1}, {2, 0, 4, 2}, {3, 0, 8, 3}}},
      {"hotspot", {{0, 1, 4, 2}, {3, 9, 4, 2}}},  // default base = uniform
      // GPU clusters address memory clusters with the uniform even split in
      // the demand tables (profiled bandwidth shapes the placements).
      {"real-apps", {{0, 1, 4, 2}, {3, 12, 4, 2}}},
      // Fixed-target patterns demand the full 4-lambda share toward every
      // targeted cluster (SWMR transmissions serialize, so channel width is
      // per transmission) and 0 toward untargeted ones.  Transpose: cluster
      // 0 (row 0, cols 0-3) feeds clusters 2, 4, 6 with one core each.
      {"transpose",
       {{0, 2, 4, 2}, {0, 4, 4, 2}, {0, 6, 4, 2}, {0, 1, 0, 0}, {1, 8, 4, 2}}},
      // Tornado (offset 8): all 4 cores of cluster c feed cluster c+8.
      {"tornado", {{0, 8, 4, 2}, {1, 9, 4, 2}, {0, 1, 0, 0}, {3, 11, 4, 2}}},
      // Bit-complement: cluster c feeds cluster 15-c with all 4 cores.
      {"bitcomp", {{0, 15, 4, 2}, {1, 14, 4, 2}, {3, 12, 4, 2}, {0, 1, 0, 0}}},
      // Seeded permutation (seed=1): pinned observed flows; a change in the
      // RNG, the shuffle, or the demand rule shifts these.
      {"permutation",
       {{0, 1, 4, 2}, {0, 10, 4, 2}, {0, 13, 4, 2}, {0, 15, 4, 2}, {1, 2, 4, 2}}},
  };

  std::set<std::string> covered;
  for (const auto& [family, entries] : golden) {
    const auto pattern = registry.make(family, topo(), set);
    ASSERT_NE(pattern, nullptr) << family;
    for (const GoldenEntry& entry : entries) {
      EXPECT_EQ(pattern->wavelengthDemand(entry.src, entry.dst), entry.demand)
          << family << " demand(" << entry.src << "," << entry.dst << ")";
      EXPECT_EQ(pattern->bandwidthClass(entry.src, entry.dst), entry.bandwidthClass)
          << family << " class(" << entry.src << "," << entry.dst << ")";
    }
    covered.insert(family);
  }

  // Every registered built-in must appear in the golden table ("matrix"
  // needs CSV inputs and the test-only family is registered above; both are
  // exempt).  Extending the registry means extending this table.
  for (const PatternFamily* family : registry.families()) {
    if (family->name == "matrix" || family->name == "test-only-family") continue;
    EXPECT_TRUE(covered.count(family->name) == 1)
        << "family '" << family->name << "' has no golden demand entries";
  }
}

TEST(SyntheticPatterns, TargetsAreValidPermutations) {
  for (const auto& targets :
       {transposeTargets(topo()), tornadoTargets(topo(), 8),
        bitComplementTargets(topo()), permutationTargets(topo(), 1)}) {
    ASSERT_EQ(targets.size(), 64u);
    std::set<CoreId> seen;
    for (CoreId src = 0; src < 64; ++src) {
      EXPECT_NE(targets[src], src);
      EXPECT_LT(targets[src], 64u);
      seen.insert(targets[src]);
    }
    // transpose's diagonal fallback can collide, so only the strict
    // permutations must be bijections; every pattern must avoid self-sends.
  }
  // Strict permutations: tornado, bitcomp, permutation are bijective.
  for (const auto& targets : {tornadoTargets(topo(), 8), bitComplementTargets(topo()),
                              permutationTargets(topo(), 1)}) {
    std::set<CoreId> seen(targets.begin(), targets.end());
    EXPECT_EQ(seen.size(), 64u);
  }
}

TEST(SyntheticPatterns, PermutationIsDeterministicPerSeed) {
  EXPECT_EQ(permutationTargets(topo(), 7), permutationTargets(topo(), 7));
  EXPECT_NE(permutationTargets(topo(), 7), permutationTargets(topo(), 8));
}

TEST(SyntheticPatterns, GeometryViolationsThrow) {
  noc::ClusterTopology rectangular(32, 4);  // 32 is not a square
  EXPECT_THROW(transposeTargets(rectangular), std::invalid_argument);
  noc::ClusterTopology nonPow2(36, 4);
  EXPECT_THROW(bitComplementTargets(nonPow2), std::invalid_argument);
  EXPECT_THROW(tornadoTargets(topo(), 0), std::invalid_argument);
}

}  // namespace
}  // namespace pnoc::traffic

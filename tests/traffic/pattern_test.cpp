#include "traffic/pattern.hpp"

#include <gtest/gtest.h>

#include <array>
#include <map>

#include "traffic/app_profile.hpp"
#include "traffic/bandwidth_set.hpp"
#include "traffic/hotspot.hpp"
#include "traffic/skewed.hpp"
#include "traffic/uniform.hpp"

namespace pnoc::traffic {
namespace {

const noc::ClusterTopology& topo() {
  static noc::ClusterTopology topology;  // 64 cores / 16 clusters
  return topology;
}

TEST(BandwidthSet, Table31Values) {
  const BandwidthSet s1 = BandwidthSet::set1();
  EXPECT_EQ(s1.totalWavelengths, 64u);
  EXPECT_EQ(s1.maxChannelWavelengths, 8u);
  EXPECT_DOUBLE_EQ(s1.channelGbps[0], 12.5);
  EXPECT_DOUBLE_EQ(s1.channelGbps[3], 100.0);

  const BandwidthSet s2 = BandwidthSet::set2();
  EXPECT_EQ(s2.totalWavelengths, 256u);
  EXPECT_EQ(s2.maxChannelWavelengths, 32u);

  const BandwidthSet s3 = BandwidthSet::set3();
  EXPECT_EQ(s3.totalWavelengths, 512u);
  EXPECT_EQ(s3.maxChannelWavelengths, 64u);
  EXPECT_DOUBLE_EQ(s3.channelGbps[3], 800.0);
}

TEST(BandwidthSet, Table33PacketGeometry) {
  // Packet is always 2048 bits; flit size tracks the set.
  for (const auto& set : BandwidthSet::all()) {
    EXPECT_EQ(set.packetBits(), 2048u) << set.name;
  }
  EXPECT_EQ(BandwidthSet::set1().flitBits, 32u);
  EXPECT_EQ(BandwidthSet::set2().flitBits, 128u);
  EXPECT_EQ(BandwidthSet::set3().flitBits, 256u);
}

TEST(BandwidthSet, WavelengthDemands) {
  // Demand = bandwidth / 12.5 Gb/s (Section 3.4.1).
  const BandwidthSet s1 = BandwidthSet::set1();
  EXPECT_EQ(s1.demandWavelengths(0), 1u);
  EXPECT_EQ(s1.demandWavelengths(1), 2u);
  EXPECT_EQ(s1.demandWavelengths(2), 4u);
  EXPECT_EQ(s1.demandWavelengths(3), 8u);
  EXPECT_EQ(BandwidthSet::set3().demandWavelengths(3), 64u);
}

TEST(BandwidthSet, FireflySplitMatchesTable33) {
  EXPECT_EQ(BandwidthSet::set1().fireflyLambdasPerChannel(16), 4u);
  EXPECT_EQ(BandwidthSet::set2().fireflyLambdasPerChannel(16), 16u);
  EXPECT_EQ(BandwidthSet::set3().fireflyLambdasPerChannel(16), 32u);
}

TEST(BandwidthSet, ByIndexRejectsOutOfRange) {
  EXPECT_THROW(BandwidthSet::byIndex(0), std::invalid_argument);
  EXPECT_THROW(BandwidthSet::byIndex(4), std::invalid_argument);
}

TEST(SkewedFractions, Table32Rows) {
  // Ascending class order {12.5, 25, 50, 100}-equivalents.
  EXPECT_EQ(skewedFractions(1), (std::array<double, 4>{0.125, 0.125, 0.25, 0.50}));
  EXPECT_EQ(skewedFractions(2), (std::array<double, 4>{0.0625, 0.0625, 0.125, 0.75}));
  EXPECT_EQ(skewedFractions(3), (std::array<double, 4>{0.025, 0.025, 0.05, 0.90}));
  EXPECT_THROW(skewedFractions(4), std::invalid_argument);
}

TEST(SkewedFractions, EachRowSumsToOne) {
  for (int level = 1; level <= 3; ++level) {
    double sum = 0.0;
    for (const double f : skewedFractions(level)) sum += f;
    EXPECT_DOUBLE_EQ(sum, 1.0) << "level " << level;
  }
}

TEST(UniformPattern, DestinationNeverSelf) {
  UniformRandomPattern pattern(topo(), BandwidthSet::set1());
  sim::Rng rng(1);
  for (CoreId src = 0; src < 64; src += 7) {
    for (int i = 0; i < 200; ++i) EXPECT_NE(pattern.sampleDestination(src, rng), src);
  }
}

TEST(UniformPattern, DestinationsCoverAllCores) {
  UniformRandomPattern pattern(topo(), BandwidthSet::set1());
  sim::Rng rng(2);
  std::map<CoreId, int> counts;
  for (int i = 0; i < 63 * 400; ++i) ++counts[pattern.sampleDestination(5, rng)];
  EXPECT_EQ(counts.size(), 63u);
  for (const auto& [core, count] : counts) EXPECT_NEAR(count, 400, 150);
}

TEST(UniformPattern, DemandIsEvenSplit) {
  UniformRandomPattern pattern(topo(), BandwidthSet::set1());
  EXPECT_EQ(pattern.wavelengthDemand(0, 1), 4u);  // 64 / 16
  UniformRandomPattern pattern3(topo(), BandwidthSet::set3());
  EXPECT_EQ(pattern3.wavelengthDemand(2, 9), 32u);  // 512 / 16
}

TEST(UniformPattern, EqualWeights) {
  UniformRandomPattern pattern(topo(), BandwidthSet::set1());
  for (CoreId c = 0; c < 64; ++c) EXPECT_EQ(pattern.sourceWeight(c), 1.0);
}

TEST(SkewedPattern, ClusterClassesRoundRobin) {
  EXPECT_EQ(clusterAppClass(0), 0u);
  EXPECT_EQ(clusterAppClass(3), 3u);
  EXPECT_EQ(clusterAppClass(4), 0u);
  EXPECT_EQ(clusterAppClass(15), 3u);
}

TEST(SkewedPattern, DemandFollowsSourceClass) {
  SkewedPattern pattern(3, topo(), BandwidthSet::set1());
  // Cluster 3 runs the 100 Gb/s class -> 8 lambdas toward everyone.
  EXPECT_EQ(pattern.wavelengthDemand(3, 0), 8u);
  EXPECT_EQ(pattern.wavelengthDemand(3, 9), 8u);
  // Cluster 0 runs the 12.5 Gb/s class -> 1 lambda.
  EXPECT_EQ(pattern.wavelengthDemand(0, 3), 1u);
  EXPECT_EQ(pattern.wavelengthDemand(1, 3), 2u);
  EXPECT_EQ(pattern.wavelengthDemand(2, 3), 4u);
}

TEST(SkewedPattern, AggregateDemandFitsWavelengthBudget) {
  // 4 clusters per class demanding {1,2,4,8} -> 60 <= 64 for set 1; the
  // analogous sums hold for sets 2 and 3 (240 <= 256, 480 <= 512).  This is
  // the structural fact that lets the DBA satisfy skewed demand fully.
  for (int setIndex = 1; setIndex <= 3; ++setIndex) {
    const BandwidthSet set = BandwidthSet::byIndex(setIndex);
    SkewedPattern pattern(3, topo(), set);
    std::uint32_t total = 0;
    for (ClusterId c = 0; c < 16; ++c) total += pattern.wavelengthDemand(c, (c + 1) % 16);
    EXPECT_LE(total, set.totalWavelengths) << set.name;
    EXPECT_GE(total, set.totalWavelengths * 9 / 10) << set.name;
  }
}

TEST(SkewedPattern, SourceWeightsFollowTable32) {
  SkewedPattern pattern(3, topo(), BandwidthSet::set1());
  // Class-3 cluster (e.g. 3): 90% over 4 clusters over 4 cores.
  EXPECT_DOUBLE_EQ(pattern.sourceWeight(topo().coreAt(3, 0)), 0.90 / 16.0);
  EXPECT_DOUBLE_EQ(pattern.sourceWeight(topo().coreAt(0, 0)), 0.025 / 16.0);
  // Weights over all cores sum to 1.
  double sum = 0.0;
  for (CoreId c = 0; c < 64; ++c) sum += pattern.sourceWeight(c);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(HotspotPattern, VariantsMatchSection342) {
  SkewedHotspotPattern h1(1, topo(), BandwidthSet::set1());
  EXPECT_DOUBLE_EQ(h1.hotspotFraction(), 0.10);
  SkewedHotspotPattern h3(3, topo(), BandwidthSet::set1());
  EXPECT_DOUBLE_EQ(h3.hotspotFraction(), 0.20);
  EXPECT_THROW(SkewedHotspotPattern(5, topo(), BandwidthSet::set1()),
               std::invalid_argument);
}

TEST(HotspotPattern, HotspotReceivesItsShare) {
  SkewedHotspotPattern pattern(3, topo(), BandwidthSet::set1(), /*hotspotCore=*/0);
  sim::Rng rng(3);
  int hits = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    hits += (pattern.sampleDestination(20, rng) == 0) ? 1 : 0;
  }
  // 20% direct + about 1/63 of the remaining 80%.
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.20 + 0.80 / 63.0, 0.01);
}

TEST(HotspotPattern, HotspotCoreDoesNotTargetItself) {
  SkewedHotspotPattern pattern(1, topo(), BandwidthSet::set1(), 0);
  sim::Rng rng(4);
  for (int i = 0; i < 2000; ++i) EXPECT_NE(pattern.sampleDestination(0, rng), 0u);
}

TEST(PatternFactory, BuildsAllPaperPatterns) {
  for (const std::string name :
       {"uniform", "skewed1", "skewed2", "skewed3", "skewed-hotspot1", "skewed-hotspot2",
        "skewed-hotspot3", "skewed-hotspot4", "real-apps"}) {
    const auto pattern = makePattern(name, topo(), BandwidthSet::set1());
    ASSERT_NE(pattern, nullptr) << name;
    EXPECT_EQ(pattern->name(), name);
  }
  EXPECT_THROW(makePattern("bogus", topo(), BandwidthSet::set1()), std::invalid_argument);
  EXPECT_THROW(makePattern("skewed9", topo(), BandwidthSet::set1()), std::invalid_argument);
}

TEST(RealApplicationPattern, PlacementMatchesSection342) {
  RealApplicationPattern pattern(topo(), BandwidthSet::set1());
  const auto& apps = pattern.placements();
  ASSERT_EQ(apps.size(), 5u);
  EXPECT_EQ(apps[0].name, "MUM");
  EXPECT_EQ(apps[0].clusters.size(), 5u);  // 20 cores
  EXPECT_EQ(apps[1].name, "BFS");
  EXPECT_EQ(apps[1].clusters.size(), 1u);  // 4 cores
  EXPECT_EQ(apps[4].name, "LPS");
  EXPECT_EQ(apps[4].clusters.size(), 4u);  // 16 cores
  EXPECT_EQ(pattern.memoryClusters().size(), 4u);
  EXPECT_TRUE(pattern.isMemoryCluster(12));
  EXPECT_FALSE(pattern.isMemoryCluster(0));
}

TEST(RealApplicationPattern, BandwidthBoundAppsDemandMore) {
  RealApplicationPattern pattern(topo(), BandwidthSet::set1());
  const auto& apps = pattern.placements();
  const auto demandOf = [&](const std::string& name) -> std::uint32_t {
    for (const auto& app : apps) {
      if (app.name == name) return app.demandLambdas;
    }
    ADD_FAILURE() << "missing app " << name;
    return 0;
  };
  // BFS and MUM are the bandwidth-sensitive benchmarks (Section 3.4.2).
  EXPECT_GT(demandOf("BFS"), demandOf("CP"));
  EXPECT_GT(demandOf("BFS"), demandOf("RAY"));
  EXPECT_GT(demandOf("MUM"), demandOf("CP"));
  EXPECT_GE(pattern.memoryDemandLambdas(), demandOf("CP"));
}

TEST(RealApplicationPattern, GpuTrafficTargetsMemoryClusters) {
  RealApplicationPattern pattern(topo(), BandwidthSet::set1());
  sim::Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    const CoreId dst = pattern.sampleDestination(0, rng);  // core 0 runs MUM
    EXPECT_TRUE(pattern.isMemoryCluster(topo().clusterOf(dst)));
  }
  for (int i = 0; i < 2000; ++i) {
    const CoreId dst = pattern.sampleDestination(topo().coreAt(12, 0), rng);
    EXPECT_FALSE(pattern.isMemoryCluster(topo().clusterOf(dst)));
  }
}

TEST(RealApplicationPattern, RejectsNonPaperGeometry) {
  noc::ClusterTopology small(16, 4);
  EXPECT_THROW(RealApplicationPattern(small, BandwidthSet::set1()),
               std::invalid_argument);
}

}  // namespace
}  // namespace pnoc::traffic

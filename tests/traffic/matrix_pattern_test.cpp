#include "traffic/matrix_pattern.hpp"

#include <gtest/gtest.h>

#include <map>

namespace pnoc::traffic {
namespace {

const noc::ClusterTopology& smallTopo() {
  static noc::ClusterTopology topology(8, 2);  // 4 clusters of 2 cores
  return topology;
}

std::vector<std::vector<double>> zeroRates() {
  return std::vector<std::vector<double>>(4, std::vector<double>(4, 0.0));
}
std::vector<std::vector<std::uint32_t>> zeroDemands() {
  return std::vector<std::vector<std::uint32_t>>(4, std::vector<std::uint32_t>(4, 0));
}

TEST(MatrixPattern, SamplesProportionallyToRates) {
  auto rates = zeroRates();
  rates[0][1] = 3.0;
  rates[0][2] = 1.0;
  auto demands = zeroDemands();
  demands[0][1] = 4;
  demands[0][2] = 2;
  MatrixPattern pattern(smallTopo(), rates, demands);
  sim::Rng rng(1);
  std::map<ClusterId, int> hits;
  for (int i = 0; i < 40000; ++i) {
    ++hits[smallTopo().clusterOf(pattern.sampleDestination(0, rng))];
  }
  EXPECT_NEAR(static_cast<double>(hits[1]) / 40000.0, 0.75, 0.02);
  EXPECT_NEAR(static_cast<double>(hits[2]) / 40000.0, 0.25, 0.02);
  EXPECT_EQ(hits.count(3), 0u);
}

TEST(MatrixPattern, WeightsSplitAcrossClusterCores) {
  auto rates = zeroRates();
  rates[1][0] = 6.0;
  auto demands = zeroDemands();
  demands[1][0] = 1;
  MatrixPattern pattern(smallTopo(), rates, demands);
  EXPECT_DOUBLE_EQ(pattern.sourceWeight(smallTopo().coreAt(1, 0)), 3.0);
  EXPECT_DOUBLE_EQ(pattern.sourceWeight(smallTopo().coreAt(1, 1)), 3.0);
  EXPECT_DOUBLE_EQ(pattern.sourceWeight(0), 0.0);
}

TEST(MatrixPattern, DemandFloorIsOne) {
  auto rates = zeroRates();
  rates[0][1] = 1.0;
  auto demands = zeroDemands();
  demands[0][1] = 5;
  MatrixPattern pattern(smallTopo(), rates, demands);
  EXPECT_EQ(pattern.wavelengthDemand(0, 1), 5u);
  EXPECT_EQ(pattern.wavelengthDemand(0, 3), 1u);  // no traffic -> floor
}

TEST(MatrixPattern, RejectsMalformedMatrices) {
  auto rates = zeroRates();
  auto demands = zeroDemands();
  // Non-zero diagonal.
  auto badRates = rates;
  badRates[2][2] = 1.0;
  EXPECT_THROW(MatrixPattern(smallTopo(), badRates, demands), std::invalid_argument);
  // Negative rate.
  badRates = rates;
  badRates[0][1] = -1.0;
  EXPECT_THROW(MatrixPattern(smallTopo(), badRates, demands), std::invalid_argument);
  // Traffic with zero demand.
  badRates = rates;
  badRates[0][1] = 1.0;
  EXPECT_THROW(MatrixPattern(smallTopo(), badRates, demands), std::invalid_argument);
  // Wrong shape.
  rates.pop_back();
  EXPECT_THROW(MatrixPattern(smallTopo(), rates, demands), std::invalid_argument);
}

TEST(MatrixPattern, ParsesCsv) {
  const std::string ratesCsv =
      "0,2,0,0\n"
      "1,0,0,0\n"
      "0,0,0,3\n"
      "0,0,1,0\n";
  const std::string demandsCsv =
      "0,4,0,0\n"
      "2,0,0,0\n"
      "0,0,0,8\n"
      "0,0,1,0\n";
  const MatrixPattern pattern =
      MatrixPattern::fromCsv(smallTopo(), ratesCsv, demandsCsv, "trace");
  EXPECT_EQ(pattern.name(), "trace");
  EXPECT_EQ(pattern.wavelengthDemand(2, 3), 8u);
  sim::Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(smallTopo().clusterOf(pattern.sampleDestination(4, rng)), 3u);
  }
}

TEST(MatrixPattern, CsvDiagnosticsNameTheLine) {
  const std::string bad =
      "0,1,0,0\n"
      "1,0,zebra,0\n"
      "0,0,0,1\n"
      "1,0,0,0\n";
  try {
    MatrixPattern::fromCsv(smallTopo(), bad, bad);
    FAIL() << "expected a parse error";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(MatrixPattern, CsvRejectsWrongShapeAndNonIntegerDemand) {
  EXPECT_THROW(MatrixPattern::fromCsv(smallTopo(), "0,1\n1,0\n", "0,1\n1,0\n"),
               std::invalid_argument);
  const std::string rates = "0,1,0,0\n1,0,0,0\n0,0,0,1\n0,0,1,0\n";
  const std::string fractionalDemand = "0,1.5,0,0\n1,0,0,0\n0,0,0,1\n0,0,1,0\n";
  EXPECT_THROW(MatrixPattern::fromCsv(smallTopo(), rates, fractionalDemand),
               std::invalid_argument);
}

}  // namespace
}  // namespace pnoc::traffic

// Spec-file and @file CLI tests: grid files in both formats load correctly,
// layer over the caller's base spec, and reject unknown keys loudly —
// including through Cli::parse, so a typo inside a loaded file cannot
// silently simulate the wrong thing.
#include "scenario/spec_file.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>

#include "scenario/cli.hpp"

namespace pnoc::scenario {
namespace {

class TempSpecFile {
 public:
  explicit TempSpecFile(const std::string& contents) {
    static int counter = 0;
    path_ = ::testing::TempDir() + "pnoc_spec_" + std::to_string(::getpid()) +
            "_" + std::to_string(counter++) + ".spec";
    std::ofstream out(path_);
    out << contents;
  }
  ~TempSpecFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(SpecFile, KeyValueStanzasYieldOneSpecEach) {
  const auto specs = parseSpecFileText(
      "# a comment does not split stanzas\n"
      "pattern=uniform\n"
      "load=0.001\n"
      "\n"
      "pattern=skewed3\n"
      "arch=firefly\n"
      "\n"
      "\n"
      "pattern=tornado\n",
      ScenarioSpec{}, "<test>");
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0].params.pattern, "uniform");
  EXPECT_DOUBLE_EQ(specs[0].params.offeredLoad, 0.001);
  EXPECT_EQ(specs[1].params.pattern, "skewed3");
  EXPECT_EQ(specs[1].params.architecture, network::Architecture::kFirefly);
  EXPECT_EQ(specs[2].params.pattern, "tornado");
}

TEST(SpecFile, SpecsLayerOverTheBase) {
  ScenarioSpec base;
  base.set("seed", "99");
  base.set("warmup", "123");
  const auto specs =
      parseSpecFileText("pattern=uniform\n\npattern=skewed1\nseed=7\n", base, "<test>");
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].params.seed, 99u);          // inherited from base
  EXPECT_EQ(specs[0].params.warmupCycles, 123u);
  EXPECT_EQ(specs[1].params.seed, 7u);           // file overrides base
  EXPECT_EQ(specs[1].params.warmupCycles, 123u);
}

TEST(SpecFile, JsonArrayAndNdjsonBothParse) {
  const auto fromArray = parseSpecFileText(
      R"([{"pattern":"uniform","load":0.002},{"pattern":"skewed3","arch":"firefly"}])",
      ScenarioSpec{}, "<test>");
  ASSERT_EQ(fromArray.size(), 2u);
  EXPECT_EQ(fromArray[0].params.pattern, "uniform");
  EXPECT_DOUBLE_EQ(fromArray[0].params.offeredLoad, 0.002);
  EXPECT_EQ(fromArray[1].params.architecture, network::Architecture::kFirefly);

  const auto fromLines = parseSpecFileText(
      "{\"pattern\":\"uniform\"}\n{\"pattern\":\"tornado\",\"seed\":5}\n",
      ScenarioSpec{}, "<test>");
  ASSERT_EQ(fromLines.size(), 2u);
  EXPECT_EQ(fromLines[1].params.pattern, "tornado");
  EXPECT_EQ(fromLines[1].params.seed, 5u);

  // A single pretty-printed object is one spec.
  const auto fromObject = parseSpecFileText(
      "{\n  \"pattern\": \"bitcomp\",\n  \"load\": 0.004\n}\n", ScenarioSpec{},
      "<test>");
  ASSERT_EQ(fromObject.size(), 1u);
  EXPECT_EQ(fromObject[0].params.pattern, "bitcomp");
}

TEST(SpecFile, UnknownKeysInsideFilesAreRejected) {
  EXPECT_THROW(parseSpecFileText("wavelenghts=64\n", ScenarioSpec{}, "<test>"),
               std::invalid_argument);
  EXPECT_THROW(
      parseSpecFileText(R"({"pattern":"uniform","bogus":1})", ScenarioSpec{}, "<test>"),
      std::invalid_argument);
  EXPECT_THROW(parseSpecFileText("load=not-a-number\n", ScenarioSpec{}, "<test>"),
               std::invalid_argument);
  EXPECT_THROW(parseSpecFileText("   \n\n", ScenarioSpec{}, "<test>"),
               std::invalid_argument);  // no specs at all
  EXPECT_THROW(loadSpecFile("/nonexistent/grid.kv"), std::invalid_argument);
  // \uXXXX escapes decode to UTF-8 (clients legitimately submit them in
  // journal/spec strings); a truncated or unpaired one still throws.
  const auto decoded =
      parseSpecFileText(R"({"label":"caf\u00e9"})", ScenarioSpec{}, "<test>");
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(decoded[0].label, "caf\xC3\xA9");
  EXPECT_THROW(
      parseSpecFileText(R"({"label":"caf\uD83D"})", ScenarioSpec{}, "<test>"),
      std::invalid_argument);
}

TEST(SpecFile, ErrorsNameTheOrigin) {
  try {
    parseSpecFileText("bogus=1\n", ScenarioSpec{}, "grid-7.kv");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("grid-7.kv"), std::string::npos);
  }
}

std::string errorFor(const std::string& text, const std::string& origin) {
  try {
    parseSpecFileText(text, ScenarioSpec{}, origin);
  } catch (const std::invalid_argument& error) {
    return error.what();
  }
  return "";
}

TEST(SpecFile, KeyValueErrorsNameTheLine) {
  // Unknown key on line 4 of the second stanza.
  const std::string what = errorFor(
      "pattern=uniform\nload=0.001\n\nwavelenghts=64\n", "grid.kv");
  EXPECT_NE(what.find("grid.kv"), std::string::npos) << what;
  EXPECT_NE(what.find("line 4"), std::string::npos) << what;
  EXPECT_NE(what.find("wavelenghts"), std::string::npos) << what;

  // Malformed value keeps its line too.
  const std::string badValue =
      errorFor("pattern=uniform\nload=not-a-number\n", "grid.kv");
  EXPECT_NE(badValue.find("line 2"), std::string::npos) << badValue;
}

TEST(SpecFile, JsonErrorsNameTheLineTheSpecStartsOn) {
  // NDJSON: the offending object is on line 3.
  const std::string ndjson = errorFor(
      "{\"pattern\":\"uniform\"}\n{\"pattern\":\"tornado\"}\n{\"bogus\":1}\n",
      "grid.json");
  EXPECT_NE(ndjson.find("grid.json"), std::string::npos) << ndjson;
  EXPECT_NE(ndjson.find("line 3"), std::string::npos) << ndjson;

  // Array form: each element keeps its own start line.
  const std::string array = errorFor(
      "[\n  {\"pattern\":\"uniform\"},\n  {\"pattern\":\"tornado\",\n"
      "   \"wavelenghts\":64}\n]\n",
      "grid.json");
  EXPECT_NE(array.find("line 3"), std::string::npos) << array;
}

TEST(CliSpecFiles, AtFileAppliesOntoTheSpecAndCommandLineWins) {
  TempSpecFile file("pattern=skewed2\nload=0.003\nseed=17\n");
  const std::string atArg = "@" + file.path();
  const char* argv[] = {"test_binary", atArg.c_str(), "seed=99"};
  ScenarioSpec spec;
  Cli cli("test_binary", "spec-file test");
  ASSERT_EQ(cli.parse(3, const_cast<char**>(argv), &spec), CliStatus::kRun);
  EXPECT_EQ(spec.params.pattern, "skewed2");        // from the file
  EXPECT_DOUBLE_EQ(spec.params.offeredLoad, 0.003); // from the file
  EXPECT_EQ(spec.params.seed, 99u);                 // command line wins
}

TEST(CliSpecFiles, UnknownKeyInsideLoadedFileFailsTheParse) {
  TempSpecFile file("pattern=uniform\nwavelenghts=64\n");  // typo'd key
  const std::string atArg = "@" + file.path();
  const char* argv[] = {"test_binary", atArg.c_str()};
  ScenarioSpec spec;
  Cli cli("test_binary", "spec-file test");
  EXPECT_EQ(cli.parse(2, const_cast<char**>(argv), &spec), CliStatus::kError);
}

TEST(CliSpecFiles, MultiSpecFileIsRejectedBySingleScenarioBinaries) {
  TempSpecFile file("pattern=uniform\n\npattern=skewed3\n");
  const std::string atArg = "@" + file.path();
  const char* argv[] = {"test_binary", atArg.c_str()};
  ScenarioSpec spec;
  Cli cli("test_binary", "spec-file test");
  EXPECT_EQ(cli.parse(2, const_cast<char**>(argv), &spec), CliStatus::kError);
}

TEST(CliSpecFiles, CollectModeKeepsFilesForTheDriver) {
  TempSpecFile file("pattern=tornado\n\npattern=skewed3\n");
  const std::string atArg = "@" + file.path();
  const char* argv[] = {"pnoc_run", atArg.c_str(), "seed=3"};
  ScenarioSpec spec;
  Cli cli("pnoc_run", "driver test");
  cli.setCollectSpecFiles(true);
  ASSERT_EQ(cli.parse(3, const_cast<char**>(argv), &spec), CliStatus::kRun);
  ASSERT_EQ(cli.specFiles().size(), 1u);
  EXPECT_EQ(cli.specFiles()[0], file.path());
  EXPECT_EQ(spec.params.pattern, "uniform") << "collect mode must not apply files";
  EXPECT_EQ(spec.params.seed, 3u);  // plain overrides still apply
}

TEST(CliBackendKeys, BackendAndShardsParse) {
  const char* argv[] = {"test_binary", "backend=processes", "shards=4"};
  ScenarioSpec spec;
  Cli cli("test_binary", "backend keys");
  ASSERT_EQ(cli.parse(3, const_cast<char**>(argv), &spec), CliStatus::kRun);
  EXPECT_EQ(cli.backendOptions().kind, BackendKind::kProcesses);
  EXPECT_EQ(cli.backendOptions().workers, 4u);

  const char* bad[] = {"test_binary", "backend=smoke-signals"};
  Cli badCli("test_binary", "backend keys");
  ScenarioSpec badSpec;
  EXPECT_EQ(badCli.parse(2, const_cast<char**>(bad), &badSpec), CliStatus::kError);

  const char* defaults[] = {"test_binary"};
  Cli defaultCli("test_binary", "backend keys");
  ScenarioSpec defaultSpec;
  ASSERT_EQ(defaultCli.parse(1, const_cast<char**>(defaults), &defaultSpec),
            CliStatus::kRun);
  EXPECT_EQ(defaultCli.backendOptions().kind, BackendKind::kThreads);
  EXPECT_EQ(defaultCli.backendOptions().workers, 0u);
  EXPECT_TRUE(defaultCli.backendOptions().hostsFile.empty());
}

TEST(CliBackendKeys, StreamAndHostsParse) {
  const char* stream[] = {"test_binary", "backend=stream", "shards=3"};
  ScenarioSpec spec;
  Cli cli("test_binary", "backend keys");
  ASSERT_EQ(cli.parse(3, const_cast<char**>(stream), &spec), CliStatus::kRun);
  EXPECT_EQ(cli.backendOptions().kind, BackendKind::kStream);
  EXPECT_EQ(cli.backendOptions().workers, 3u);

  // hosts= names a fleet file (leading @ optional) and implies
  // backend=stream when no backend was chosen.
  TempSpecFile hosts(R"([{"launcher": ["env"], "workers": 2}])");
  const std::string hostsAtArg = "hosts=@" + hosts.path();
  const char* withHosts[] = {"test_binary", hostsAtArg.c_str()};
  Cli hostsCli("test_binary", "backend keys");
  ScenarioSpec hostsSpec;
  ASSERT_EQ(hostsCli.parse(2, const_cast<char**>(withHosts), &hostsSpec),
            CliStatus::kRun);
  EXPECT_EQ(hostsCli.backendOptions().kind, BackendKind::kStream);
  EXPECT_EQ(hostsCli.backendOptions().hostsFile, hosts.path());
  ASSERT_EQ(hostsCli.backendOptions().hosts.size(), 1u);  // parsed once, here
  EXPECT_EQ(hostsCli.backendOptions().hosts[0].workers, 2u);

  // ... but contradicting an explicit non-stream backend is an error.
  const std::string hostsKey = "hosts=" + hosts.path();
  const char* contradictory[] = {"test_binary", "backend=threads", hostsKey.c_str()};
  Cli badCli("test_binary", "backend keys");
  ScenarioSpec badSpec;
  EXPECT_EQ(badCli.parse(3, const_cast<char**>(contradictory), &badSpec),
            CliStatus::kError);

  // ... and so is shards= next to a fleet that sizes itself.
  const char* shardsToo[] = {"test_binary", "shards=8", hostsKey.c_str()};
  Cli shardsCli("test_binary", "backend keys");
  ScenarioSpec shardsSpec;
  EXPECT_EQ(shardsCli.parse(3, const_cast<char**>(shardsToo), &shardsSpec),
            CliStatus::kError);

  // An unreadable fleet file fails at parse time, not mid-dispatch.
  const char* missing[] = {"test_binary", "hosts=/nonexistent/hosts.json"};
  Cli missingCli("test_binary", "backend keys");
  ScenarioSpec missingSpec;
  EXPECT_EQ(missingCli.parse(2, const_cast<char**>(missing), &missingSpec),
            CliStatus::kError);

  // hosts=@ with no path (an unset shell variable) must not silently run
  // single-machine.
  const char* emptyHosts[] = {"test_binary", "hosts=@"};
  Cli emptyCli("test_binary", "backend keys");
  ScenarioSpec emptySpec;
  EXPECT_EQ(emptyCli.parse(2, const_cast<char**>(emptyHosts), &emptySpec),
            CliStatus::kError);
}

}  // namespace
}  // namespace pnoc::scenario

// ExecutionBackend tests: the worker-count policy lives in one place and
// clamps sanely, and SubprocessBackend — any shard count — produces results
// and BENCH records bit-identical to InProcessBackend for mixed
// run/findPeaks batches (the acceptance bar for pluggable execution).
//
// The subprocess tests re-exec THIS test binary: tests/main.cpp recognizes
// --pnoc-worker and runs the protocol worker loop.
#include "scenario/execution_backend.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <string>

#include "scenario/in_process_backend.hpp"
#include "scenario/json_record.hpp"
#include "scenario/scenario_runner.hpp"
#include "scenario/subprocess_backend.hpp"
#include "scenario/wire.hpp"

namespace pnoc::scenario {
namespace {

ScenarioSpec quickSpec(const std::string& pattern, const std::string& arch,
                       double load, std::uint64_t seed) {
  ScenarioSpec spec;
  spec.set("pattern", pattern);
  spec.set("arch", arch);
  spec.params.offeredLoad = load;
  spec.params.seed = seed;
  spec.params.warmupCycles = 100;
  spec.params.measureCycles = 600;
  return spec;
}

/// Scoped PNOC_BENCH_THREADS override (restored on destruction).
class ThreadsEnv {
 public:
  explicit ThreadsEnv(const char* value) {
    const char* old = std::getenv("PNOC_BENCH_THREADS");
    hadOld_ = old != nullptr;
    if (hadOld_) old_ = old;
    if (value == nullptr) {
      ::unsetenv("PNOC_BENCH_THREADS");
    } else {
      ::setenv("PNOC_BENCH_THREADS", value, 1);
    }
  }
  ~ThreadsEnv() {
    if (hadOld_) {
      ::setenv("PNOC_BENCH_THREADS", old_.c_str(), 1);
    } else {
      ::unsetenv("PNOC_BENCH_THREADS");
    }
  }

 private:
  bool hadOld_ = false;
  std::string old_;
};

TEST(ResolveWorkerCount, ExplicitRequestClampsToBatchSize) {
  EXPECT_EQ(resolveWorkerCount(4, 100), 4u);
  EXPECT_EQ(resolveWorkerCount(16, 3), 3u);   // shards > specs.size()
  EXPECT_EQ(resolveWorkerCount(16, 1), 1u);
  EXPECT_EQ(resolveWorkerCount(5, 0), 1u);    // empty batch still sane
}

TEST(ResolveWorkerCount, EnvZeroAndGarbageFallThrough) {
  {
    ThreadsEnv env("0");  // zero must not mean "zero workers"
    EXPECT_GE(resolveWorkerCount(0, 1000), 1u);
  }
  {
    ThreadsEnv env("-3");
    EXPECT_GE(resolveWorkerCount(0, 1000), 1u);
  }
  {
    ThreadsEnv env("banana");
    EXPECT_GE(resolveWorkerCount(0, 1000), 1u);
  }
  {
    ThreadsEnv env(nullptr);  // unset
    EXPECT_GE(resolveWorkerCount(0, 1000), 1u);
  }
}

TEST(ResolveWorkerCount, EnvPinsAutoCount) {
  ThreadsEnv env("3");
  EXPECT_EQ(resolveWorkerCount(0, 1000), 3u);
  EXPECT_EQ(resolveWorkerCount(0, 2), 2u);  // still clamped to the batch
  EXPECT_EQ(resolveWorkerCount(5, 1000), 5u);  // explicit request wins
}

TEST(ExecutionBackend, FactoryAndCapabilities) {
  const auto threads = makeBackend(BackendOptions{BackendKind::kThreads, 2});
  EXPECT_EQ(threads->name(), "threads");
  EXPECT_FALSE(threads->capabilities().crossProcess);
  EXPECT_EQ(threads->workersFor(8), 2u);

  const auto processes = makeBackend(BackendOptions{BackendKind::kProcesses, 16});
  EXPECT_EQ(processes->name(), "processes");
  EXPECT_TRUE(processes->capabilities().crossProcess);
  EXPECT_TRUE(processes->capabilities().deterministicMerge);
  EXPECT_EQ(processes->workersFor(3), 3u);  // shards > specs.size() clamps

  EXPECT_EQ(parseBackendKind("threads"), BackendKind::kThreads);
  EXPECT_EQ(parseBackendKind("processes"), BackendKind::kProcesses);
  EXPECT_THROW(parseBackendKind("carrier-pigeons"), std::invalid_argument);
}

TEST(InProcessBackend, MatchesDirectExecution) {
  const std::vector<ScenarioSpec> specs = {
      quickSpec("uniform", "firefly", 0.0008, 3),
      quickSpec("skewed3", "dhetpnoc", 0.002, 5),
  };
  InProcessBackend backend(2);
  const auto results = backend.run(specs);
  ASSERT_EQ(results.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(wire::toJson(results[i].metrics), wire::toJson(runScenario(specs[i])));
  }
}

// The acceptance bar: for the same spec batch and seeds, SubprocessBackend
// (any shard count) and InProcessBackend produce identical merged metrics —
// compared here through the exact wire serialization of every field.
TEST(SubprocessBackend, MixedBatchMatchesInProcessBitForBit) {
  std::vector<ScenarioJob> jobs;
  jobs.push_back({ScenarioJob::Op::kRun, quickSpec("uniform", "dhetpnoc", 0.001, 7)});
  jobs.push_back({ScenarioJob::Op::kFindPeak, quickSpec("skewed3", "dhetpnoc", 0.001, 9)});
  jobs.push_back({ScenarioJob::Op::kRun, quickSpec("bitcomp", "firefly", 0.0008, 11)});
  jobs.push_back({ScenarioJob::Op::kFindPeak, quickSpec("uniform", "firefly", 0.001, 13)});

  InProcessBackend inProcess(2);
  const auto expected = inProcess.execute(jobs);

  for (const unsigned shards : {1u, 2u, 3u}) {
    SubprocessBackend subprocess(shards);
    const auto actual = subprocess.execute(jobs);
    ASSERT_EQ(actual.size(), expected.size()) << "shards=" << shards;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(actual[i].op, expected[i].op);
      EXPECT_EQ(actual[i].spec.toJson(), expected[i].spec.toJson());
      EXPECT_EQ(wire::toJson(actual[i].metrics), wire::toJson(expected[i].metrics))
          << "shards=" << shards << " job=" << i;
      EXPECT_EQ(wire::toJson(actual[i].search), wire::toJson(expected[i].search))
          << "shards=" << shards << " job=" << i;
    }
  }
}

// ... and the BENCH records built from those results are byte-identical too
// (timing records excluded — they are wall-clock by definition).
TEST(SubprocessBackend, BenchRecordsMatchInProcessByteForByte) {
  const std::vector<ScenarioSpec> runSpecs = {
      quickSpec("uniform", "dhetpnoc", 0.001, 21),
      quickSpec("skewed2", "firefly", 0.0008, 22),
  };
  const std::vector<ScenarioSpec> peakSpecs = {
      quickSpec("skewed3", "dhetpnoc", 0.001, 23),
  };

  // Collect the serialized record lines every bench binary would emit
  // (recordRun/recordPeak are THE single BENCH code path).
  const auto recordLines = [&](ExecutionBackend& backend) {
    JsonRecorder recorder("backend_compare");
    std::string lines;
    for (const auto& result : backend.run(runSpecs)) {
      lines += recordRun(recorder, result.spec, result.metrics).serialize() + "\n";
    }
    for (const auto& peak : backend.findPeaks(peakSpecs)) {
      lines += recordPeak(recorder, peak).serialize() + "\n";
    }
    return lines;
  };

  InProcessBackend inProcess(2);
  SubprocessBackend subprocess(2);
  const std::string expected = recordLines(inProcess);
  const std::string actual = recordLines(subprocess);
  ASSERT_FALSE(expected.empty());
  EXPECT_EQ(actual, expected);
}

TEST(SubprocessBackend, ShardsBeyondBatchSizeStillWork) {
  const std::vector<ScenarioSpec> specs = {
      quickSpec("uniform", "dhetpnoc", 0.001, 31),
      quickSpec("uniform", "firefly", 0.001, 32),
  };
  SubprocessBackend subprocess(8);  // > specs.size(): clamps to 2 workers
  EXPECT_EQ(subprocess.workersFor(specs.size()), 2u);
  const auto results = subprocess.run(specs);
  InProcessBackend inProcess(1);
  const auto expected = inProcess.run(specs);
  ASSERT_EQ(results.size(), 2u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(wire::toJson(results[i].metrics), wire::toJson(expected[i].metrics));
  }
}

// Regression test for the pipe-inheritance deadlock: a later-spawned worker
// used to inherit an earlier worker's stdin write end (no FD_CLOEXEC), so
// the earlier worker never saw EOF until the later one exited — and once the
// later worker's replies outgrew the ~64 KiB pipe buffer while the parent
// was still reading the earlier worker, everything hung forever.  Peak
// replies are ~4 KiB each, so 44 jobs over 2 shards puts every worker's
// output well past one pipe buffer.
TEST(SubprocessBackend, LargeRepliesAcrossWorkersDoNotDeadlock) {
  std::vector<ScenarioSpec> specs;
  for (std::uint64_t seed = 0; seed < 44; ++seed) {
    ScenarioSpec spec = quickSpec("uniform", "dhetpnoc", 0.001, 100 + seed);
    spec.params.warmupCycles = 50;
    spec.params.measureCycles = 400;
    specs.push_back(spec);
  }
  SubprocessBackend subprocess(2);
  const auto peaks = subprocess.findPeaks(specs);
  ASSERT_EQ(peaks.size(), specs.size());
  for (const auto& peak : peaks) {
    EXPECT_FALSE(peak.search.sweep.empty());
  }
}

TEST(SubprocessBackend, EmptyBatchIsANoOp) {
  SubprocessBackend subprocess(4);
  EXPECT_TRUE(subprocess.run({}).empty());
  EXPECT_TRUE(subprocess.findPeaks({}).empty());
}

TEST(SubprocessBackend, JobFailureSurfacesAsException) {
  // An unknown traffic family passes spec.set() (patterns are validated at
  // network build time) and explodes inside the worker; the backend must
  // surface that as an exception, not silence or a crash.
  ScenarioSpec bad = quickSpec("uniform", "dhetpnoc", 0.001, 41);
  bad.params.pattern = "no-such-family";
  SubprocessBackend subprocess(1);
  EXPECT_THROW(subprocess.run({bad}), std::runtime_error);
}

TEST(ScenarioRunner, FacadeSelectsBackendFromOptions) {
  const ScenarioRunner threads(BackendOptions{BackendKind::kThreads, 3});
  EXPECT_EQ(threads.backend().name(), "threads");
  EXPECT_EQ(threads.backend().workersFor(100), 3u);

  const ScenarioRunner processes(BackendOptions{BackendKind::kProcesses, 2});
  EXPECT_EQ(processes.backend().name(), "processes");
  EXPECT_TRUE(processes.backend().capabilities().crossProcess);

  const ScenarioRunner legacy(4);  // unsigned ctor keeps meaning "threads"
  EXPECT_EQ(legacy.backend().name(), "threads");
  EXPECT_EQ(legacy.backend().workersFor(100), 4u);
}

}  // namespace
}  // namespace pnoc::scenario

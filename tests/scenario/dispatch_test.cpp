// Dispatch-subsystem tests: the streaming worker pool, its transports and
// the checkpointed-resume machinery.
//
// The acceptance bar mirrors the backend tests one layer down: for the same
// spec batch, StreamingBackend — any worker count, any transport, any
// completion order — produces results and BENCH records bit-identical to
// InProcessBackend; a dead worker's in-flight job is retried once on a
// survivor; unrecoverable losses fail loudly naming the worker and job.
//
// Like the subprocess tests, every worker here is a re-exec of THIS test
// binary (tests/main.cpp recognizes --pnoc-worker; the worker loop
// auto-detects the streaming handshake).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "scenario/dispatch/checkpoint.hpp"
#include "scenario/dispatch/hosts_file.hpp"
#include "scenario/dispatch/streaming_backend.hpp"
#include "scenario/dispatch/streaming_worker_pool.hpp"
#include "scenario/in_process_backend.hpp"
#include "scenario/json_record.hpp"
#include "scenario/scenario_runner.hpp"
#include "scenario/subprocess_backend.hpp"
#include "scenario/wire.hpp"

namespace pnoc::scenario {
namespace {

using dispatch::HostEntry;
using dispatch::StreamingBackend;

ScenarioSpec quickSpec(const std::string& pattern, const std::string& arch,
                       double load, std::uint64_t seed,
                       std::uint64_t measureCycles = 600) {
  ScenarioSpec spec;
  spec.set("pattern", pattern);
  spec.set("arch", arch);
  spec.params.offeredLoad = load;
  spec.params.seed = seed;
  spec.params.warmupCycles = 100;
  spec.params.measureCycles = measureCycles;
  return spec;
}

/// Scoped env override (restored on destruction).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    hadOld_ = old != nullptr;
    if (hadOld_) old_ = old;
    if (value == nullptr) {
      ::unsetenv(name);
    } else {
      ::setenv(name, value, 1);
    }
  }
  ~ScopedEnv() {
    if (hadOld_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  bool hadOld_ = false;
  std::string old_;
};

class TempFile {
 public:
  explicit TempFile(const std::string& contents, const std::string& suffix = ".json") {
    static int counter = 0;
    path_ = ::testing::TempDir() + "pnoc_dispatch_" + std::to_string(::getpid()) +
            "_" + std::to_string(counter++) + suffix;
    std::ofstream out(path_);
    out << contents;
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::vector<ScenarioJob> mixedJobs() {
  std::vector<ScenarioJob> jobs;
  jobs.push_back({ScenarioJob::Op::kRun, quickSpec("uniform", "dhetpnoc", 0.001, 7)});
  jobs.push_back(
      {ScenarioJob::Op::kFindPeak, quickSpec("skewed3", "dhetpnoc", 0.001, 9)});
  jobs.push_back({ScenarioJob::Op::kRun, quickSpec("bitcomp", "firefly", 0.0008, 11)});
  jobs.push_back(
      {ScenarioJob::Op::kFindPeak, quickSpec("uniform", "firefly", 0.001, 13)});
  return jobs;
}

void expectSameOutcomes(const std::vector<ScenarioOutcome>& actual,
                        const std::vector<ScenarioOutcome>& expected,
                        const std::string& context) {
  ASSERT_EQ(actual.size(), expected.size()) << context;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].op, expected[i].op) << context << " job=" << i;
    EXPECT_EQ(actual[i].spec.toJson(), expected[i].spec.toJson())
        << context << " job=" << i;
    EXPECT_EQ(wire::toJson(actual[i].metrics), wire::toJson(expected[i].metrics))
        << context << " job=" << i;
    EXPECT_EQ(wire::toJson(actual[i].search), wire::toJson(expected[i].search))
        << context << " job=" << i;
  }
}

// --- streaming handshake (wire) ---

TEST(StreamHandshake, HelloRoundTripsAndRejectsNonHellos) {
  int version = 0;
  EXPECT_TRUE(wire::parseStreamHello(wire::streamHelloLine(), version));
  EXPECT_EQ(version, wire::kStreamProtocolVersion);
  EXPECT_FALSE(wire::parseStreamHello("{\"op\":\"run\",\"index\":0,\"spec\":{}}",
                                      version));
  EXPECT_FALSE(wire::parseStreamHello("", version));
  EXPECT_FALSE(wire::parseStreamHello("not json at all", version));
}

TEST(StreamHandshake, AckValidatesVersion) {
  EXPECT_NO_THROW(wire::checkStreamAck(wire::streamAckLine()));
  EXPECT_THROW(wire::checkStreamAck("{\"pnoc_stream_ack\":999}"), std::runtime_error);
  EXPECT_THROW(wire::checkStreamAck("{\"index\":0,\"error\":\"x\"}"),
               std::runtime_error);
  EXPECT_THROW(wire::checkStreamAck("garbage"), std::runtime_error);
}

// --- hosts files ---

TEST(HostsFile, ParsesArraysStringsAndDefaults) {
  const auto hosts = dispatch::parseHostsFileText(
      R"([{"launcher": ["ssh", "hostA"], "workers": 4,
           "executable": "/opt/pnoc/bin/pnoc_run"},
          {"launcher": "docker exec sim0", "workers": 2},
          {"workers": 3},
          {}])",
      "<test>");
  ASSERT_EQ(hosts.size(), 4u);
  EXPECT_EQ(hosts[0].launcher, (std::vector<std::string>{"ssh", "hostA"}));
  EXPECT_EQ(hosts[0].workers, 4u);
  EXPECT_EQ(hosts[0].executable, "/opt/pnoc/bin/pnoc_run");
  EXPECT_EQ(hosts[1].launcher, (std::vector<std::string>{"docker", "exec", "sim0"}));
  EXPECT_EQ(hosts[1].workers, 2u);
  EXPECT_TRUE(hosts[2].launcher.empty());
  EXPECT_EQ(hosts[3].workers, 1u);  // default
  EXPECT_EQ(dispatch::totalWorkers(hosts), 10u);
  EXPECT_EQ(dispatch::transportsFor(hosts).size(), 10u);
}

TEST(HostsFile, WrappedObjectFormParses) {
  const auto hosts = dispatch::parseHostsFileText(
      R"({"hosts": [{"workers": 2}]})", "<test>");
  ASSERT_EQ(hosts.size(), 1u);
  EXPECT_EQ(hosts[0].workers, 2u);
}

TEST(HostsFile, RejectsTyposAndNonsense) {
  EXPECT_THROW(dispatch::parseHostsFileText(R"([{"wrokers": 2}])", "<test>"),
               std::invalid_argument);
  EXPECT_THROW(dispatch::parseHostsFileText(R"([{"workers": 0}])", "<test>"),
               std::invalid_argument);
  EXPECT_THROW(dispatch::parseHostsFileText(R"([])", "<test>"),
               std::invalid_argument);
  EXPECT_THROW(dispatch::parseHostsFileText(R"({"machines": []})", "<test>"),
               std::invalid_argument);
  EXPECT_THROW(dispatch::parseHostsFileText("42", "<test>"), std::invalid_argument);
  EXPECT_THROW(dispatch::loadHostsFile("/nonexistent/hosts.json"),
               std::invalid_argument);
  // The origin is named.
  try {
    dispatch::parseHostsFileText("[]", "fleet-7.json");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("fleet-7.json"), std::string::npos);
  }
}

TEST(HostsFile, TyposGetSuggestions) {
  // Entry keys, policy keys, and top-level keys each suggest their nearest
  // neighbor — a hosts-file typo names its fix.
  const auto messageOf = [](const std::string& text) -> std::string {
    try {
      dispatch::parseHostsFleetText(text, "<test>");
    } catch (const std::invalid_argument& error) {
      return error.what();
    }
    return "";
  };
  EXPECT_NE(messageOf(R"([{"wrokers": 2}])").find("did you mean 'workers'?"),
            std::string::npos);
  EXPECT_NE(messageOf(R"({"hosts": [{"workers": 1}], "policy": {"retrys": 2}})")
                .find("did you mean 'retries'?"),
            std::string::npos);
  EXPECT_NE(messageOf(R"({"host": [{"workers": 1}]})")
                .find("did you mean 'hosts'?"),
            std::string::npos);
}

// --- backend selection ---

TEST(StreamingBackend, FactoryNameAndCapabilities) {
  EXPECT_EQ(parseBackendKind("stream"), BackendKind::kStream);
  EXPECT_EQ(toString(BackendKind::kStream), "stream");
  const auto backend = makeBackend(BackendOptions{BackendKind::kStream, 3, ""});
  EXPECT_EQ(backend->name(), "stream");
  EXPECT_TRUE(backend->capabilities().crossProcess);
  EXPECT_TRUE(backend->capabilities().deterministicMerge);
  EXPECT_EQ(backend->workersFor(8), 3u);
  EXPECT_EQ(backend->workersFor(2), 2u);  // clamped to the batch

  const ScenarioRunner runner(BackendOptions{BackendKind::kStream, 2, ""});
  EXPECT_EQ(runner.backend().name(), "stream");
}

TEST(StreamingBackend, HostsFleetSizesWorkerCount) {
  StreamingBackend backend({HostEntry{{}, 2, ""}, HostEntry{{"env"}, 3, ""}});
  EXPECT_EQ(backend.workersFor(100), 5u);  // the whole fleet
  EXPECT_EQ(backend.workersFor(2), 2u);    // clamped to the batch
}

TEST(StreamingBackend, EmptyBatchIsANoOp) {
  StreamingBackend backend(4);
  EXPECT_TRUE(backend.run({}).empty());
  EXPECT_TRUE(backend.findPeaks({}).empty());
}

// --- the acceptance bar: byte-identity across worker counts ---

TEST(StreamingBackend, MixedBatchMatchesInProcessBitForBit) {
  const std::vector<ScenarioJob> jobs = mixedJobs();
  InProcessBackend inProcess(2);
  const auto expected = inProcess.execute(jobs);
  for (const unsigned shards : {1u, 2u, 3u}) {
    StreamingBackend streaming(shards);
    const auto actual = streaming.execute(jobs);
    expectSameOutcomes(actual, expected, "shards=" + std::to_string(shards));
  }
}

TEST(StreamingBackend, CommandTransportMatchesInProcess) {
  // `env` is a do-nothing launcher prefix: the worker command runs locally
  // but through the exact argv path an `ssh host` or `docker exec` fleet
  // would use.
  const std::vector<ScenarioJob> jobs = mixedJobs();
  InProcessBackend inProcess(2);
  const auto expected = inProcess.execute(jobs);
  StreamingBackend streaming({HostEntry{{}, 1, ""}, HostEntry{{"env"}, 1, ""}});
  const auto actual = streaming.execute(jobs);
  expectSameOutcomes(actual, expected, "hosts fleet");
}

TEST(StreamingBackend, ObserverFiresPerCompletedJob) {
  const std::vector<ScenarioJob> jobs = mixedJobs();
  StreamingBackend streaming(2);
  std::vector<bool> seen(jobs.size(), false);
  streaming.setOutcomeObserver([&](std::size_t index, const ScenarioOutcome& outcome) {
    ASSERT_LT(index, seen.size());
    EXPECT_FALSE(seen[index]) << "observer fired twice for job " << index;
    seen[index] = true;
    EXPECT_EQ(outcome.spec.toJson(), jobs[index].spec.toJson());
  });
  const auto outcomes = streaming.execute(jobs);
  ASSERT_EQ(outcomes.size(), jobs.size());
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_TRUE(seen[i]) << "observer never fired for job " << i;
  }
}

// --- uneven-cost grids (the reason the pool exists) ---

// A mixed grid where one spec costs ~50x the others must merge
// byte-identically across every backend and shard count — completion order
// is wildly different in each configuration, the records must not be.
TEST(UnevenGrid, BenchRecordsByteIdenticalAcrossAllBackendsAndShards) {
  std::vector<ScenarioSpec> runSpecs;
  runSpecs.push_back(quickSpec("uniform", "dhetpnoc", 0.001, 40, 10000));  // heavy
  for (std::uint64_t s = 0; s < 5; ++s) {
    runSpecs.push_back(quickSpec("uniform", "firefly", 0.001, 41 + s, 300));
  }
  const std::vector<ScenarioSpec> peakSpecs = {
      quickSpec("skewed3", "dhetpnoc", 0.001, 50, 400)};

  const auto recordLines = [&](ExecutionBackend& backend) {
    JsonRecorder recorder("uneven_compare");
    std::string lines;
    for (const auto& result : backend.run(runSpecs)) {
      lines += recordRun(recorder, result.spec, result.metrics).serialize() + "\n";
    }
    for (const auto& peak : backend.findPeaks(peakSpecs)) {
      lines += recordPeak(recorder, peak).serialize() + "\n";
    }
    return lines;
  };

  InProcessBackend reference(1);
  const std::string expected = recordLines(reference);
  ASSERT_FALSE(expected.empty());
  for (const unsigned shards : {1u, 2u, 3u}) {
    InProcessBackend threads(shards);
    EXPECT_EQ(recordLines(threads), expected) << "threads shards=" << shards;
    SubprocessBackend processes(shards);
    EXPECT_EQ(recordLines(processes), expected) << "processes shards=" << shards;
    StreamingBackend stream(shards);
    EXPECT_EQ(recordLines(stream), expected) << "stream shards=" << shards;
  }
}

// Dynamic dealing: the worker stuck on the ~100x spec must NOT receive an
// equal share of the batch — its sibling drains the cheap jobs meanwhile.
// (Static round-robin would give each worker half.)
TEST(StreamingWorkerPool, SlowWorkerGetsFewerJobs) {
  std::vector<ScenarioJob> jobs;
  jobs.push_back(
      {ScenarioJob::Op::kRun, quickSpec("uniform", "dhetpnoc", 0.001, 60, 40000)});
  for (std::uint64_t s = 0; s < 8; ++s) {
    jobs.push_back(
        {ScenarioJob::Op::kRun, quickSpec("uniform", "dhetpnoc", 0.001, 61 + s, 200)});
  }
  StreamingBackend streaming(2);
  const auto outcomes = streaming.execute(jobs);
  ASSERT_EQ(outcomes.size(), jobs.size());
  const auto& perWorker = streaming.lastStats().jobsPerWorker;
  ASSERT_EQ(perWorker.size(), 2u);
  const unsigned lo = std::min(perWorker[0], perWorker[1]);
  const unsigned hi = std::max(perWorker[0], perWorker[1]);
  EXPECT_EQ(lo + hi, jobs.size());
  EXPECT_LE(lo, 2u) << "the worker on the heavy spec should finish few jobs";
  EXPECT_GE(hi, 7u) << "its sibling should have drained the cheap jobs";
  EXPECT_EQ(streaming.lastStats().retries, 0u);
}

// --- worker-death handling (loud failure + retry-once) ---

TEST(StreamingWorkerPool, DeadWorkersInFlightJobIsRetriedOnASurvivor) {
  // The crash hook kills whichever worker first receives job 2 — once: the
  // O_EXCL lock file lets the retry run to completion on the survivor.
  const std::string lock = ::testing::TempDir() + "pnoc_crash_once_" +
                           std::to_string(::getpid()) + ".lock";
  std::remove(lock.c_str());
  ScopedEnv crash("PNOC_TEST_STREAM_CRASH", ("2:" + lock).c_str());

  std::vector<ScenarioJob> jobs;
  for (std::uint64_t s = 0; s < 5; ++s) {
    jobs.push_back(
        {ScenarioJob::Op::kRun, quickSpec("uniform", "dhetpnoc", 0.001, 70 + s, 500)});
  }
  InProcessBackend inProcess(2);
  std::vector<ScenarioOutcome> expected;
  {
    ScopedEnv noCrash("PNOC_TEST_STREAM_CRASH", nullptr);  // in-process reference
    expected = inProcess.execute(jobs);
  }

  StreamingBackend streaming(2);
  const auto actual = streaming.execute(jobs);
  expectSameOutcomes(actual, expected, "retry-once");
  EXPECT_EQ(streaming.lastStats().retries, 1u);
  std::remove(lock.c_str());
}

TEST(StreamingWorkerPool, IdleDeathIsToleratedWithAllResultsDelivered) {
  // The worker that handles job 0 replies and THEN dies (the "after:"
  // crash-hook variant) — no job is lost, so the batch must complete on the
  // survivors with every outcome intact, not fail at teardown over the dead
  // worker's exit status.
  ScopedEnv crash("PNOC_TEST_STREAM_CRASH", "after:0");
  std::vector<ScenarioJob> jobs;
  for (std::uint64_t s = 0; s < 5; ++s) {
    jobs.push_back(
        {ScenarioJob::Op::kRun, quickSpec("uniform", "dhetpnoc", 0.001, 75 + s, 500)});
  }
  InProcessBackend inProcess(2);
  const auto expected = inProcess.execute(jobs);
  StreamingBackend streaming(2);
  const auto actual = streaming.execute(jobs);
  expectSameOutcomes(actual, expected, "idle death");
}

TEST(StreamingWorkerPool, UnrecoverableDeathFailsLoudlyNamingTheJob) {
  // No lock file: EVERY worker handed job 1 dies, so the one retry is spent
  // and the dispatch must fail naming the job instead of merging the rest.
  ScopedEnv crash("PNOC_TEST_STREAM_CRASH", "1");
  std::vector<ScenarioJob> jobs;
  for (std::uint64_t s = 0; s < 4; ++s) {
    jobs.push_back(
        {ScenarioJob::Op::kRun, quickSpec("uniform", "dhetpnoc", 0.001, 80 + s, 400)});
  }
  StreamingBackend streaming(2);
  try {
    streaming.execute(jobs);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("job 1"), std::string::npos) << what;
    EXPECT_NE(what.find("exited with status 57"), std::string::npos) << what;
  }
}

TEST(SubprocessBackend, DeadWorkerFailsLoudlyNamingUnansweredJobs) {
  // Batch protocol has no retry: a worker dying on job 1 must fail the
  // execute() naming the jobs that never got replies — silently merging the
  // partial batch is the bug this guards against.
  ScopedEnv crash("PNOC_TEST_STREAM_CRASH", "1");
  std::vector<ScenarioJob> jobs;
  for (std::uint64_t s = 0; s < 4; ++s) {
    jobs.push_back(
        {ScenarioJob::Op::kRun, quickSpec("uniform", "dhetpnoc", 0.001, 90 + s, 400)});
  }
  SubprocessBackend subprocess(2);
  try {
    subprocess.execute(jobs);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("exited with status 57"), std::string::npos) << what;
    EXPECT_NE(what.find("unanswered"), std::string::npos) << what;
  }
}

TEST(StreamingWorkerPool, SilentWorkerFailsTheHandshakeInsteadOfHanging) {
  // `sleep` holds both pipes open and never writes — the observable
  // behavior of an older-build batch worker waiting for a stdin EOF the
  // streaming parent never sends.  The handshake deadline must fail the
  // dispatch, not hang it (teardown SIGTERMs the sleeper).
  ScopedEnv timeout("PNOC_STREAM_ACK_TIMEOUT_MS", "300");
  StreamingBackend streaming({HostEntry{{"sh", "-c", "exec sleep 30"}, 1, ""}});
  std::vector<ScenarioJob> jobs;
  jobs.push_back({ScenarioJob::Op::kRun, quickSpec("uniform", "dhetpnoc", 0.001, 96)});
  try {
    streaming.execute(jobs);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("did not acknowledge"),
              std::string::npos)
        << error.what();
  }
}

TEST(StreamingWorkerPool, AllWorkersDeadFailsInsteadOfHanging) {
  // A launcher that exits immediately gives EOF before any ack: no live
  // workers remain, and execute() must throw, not spin or hang.
  StreamingBackend streaming({HostEntry{{"false"}, 2, ""}});
  std::vector<ScenarioJob> jobs;
  jobs.push_back({ScenarioJob::Op::kRun, quickSpec("uniform", "dhetpnoc", 0.001, 95)});
  EXPECT_THROW(streaming.execute(jobs), std::runtime_error);
}

TEST(StreamingBackend, JobFailureSurfacesAsException) {
  ScenarioSpec bad = quickSpec("uniform", "dhetpnoc", 0.001, 41);
  bad.params.pattern = "no-such-family";
  StreamingBackend streaming(1);
  EXPECT_THROW(streaming.run({bad}), std::runtime_error);
}

// --- checkpointed resume ---

std::string taggedRecord(JsonRecorder& recorder, const ScenarioResult& result,
                         std::size_t gridIndex) {
  return recordRun(recorder, result.spec, result.metrics)
      .integer("grid_index", static_cast<long long>(gridIndex))
      .serialize();
}

TEST(Checkpoint, RoundTripsAndReportsMissingIndices) {
  const std::vector<ScenarioSpec> grid = {
      quickSpec("uniform", "dhetpnoc", 0.001, 100),
      quickSpec("uniform", "firefly", 0.001, 101),
      quickSpec("skewed3", "dhetpnoc", 0.002, 102),
  };
  InProcessBackend backend(1);
  const auto results = backend.run(grid);

  // Checkpoint holding indices 0 and 2 (index 1 "lost to a kill").
  JsonRecorder recorder("ckpt");
  std::vector<std::string> raw = {taggedRecord(recorder, results[0], 0),
                                  taggedRecord(recorder, results[2], 2)};
  std::ostringstream file;
  file << "{\"bench\":\"ckpt\",\"records\":[\n  " << raw[0] << ",\n  " << raw[1]
       << "\n]}\n";

  const auto checkpoint =
      dispatch::parseBenchCheckpoint(file.str(), "run", grid, "<test>");
  EXPECT_EQ(checkpoint.presentCount(), 2u);
  EXPECT_EQ(checkpoint.missingIndices(), std::vector<std::size_t>{1});
  ASSERT_TRUE(checkpoint.rawByIndex[0]);
  EXPECT_EQ(*checkpoint.rawByIndex[0], raw[0]);  // byte-for-byte
  ASSERT_TRUE(checkpoint.rawByIndex[2]);
  EXPECT_EQ(*checkpoint.rawByIndex[2], raw[1]);

  // Records named differently (timing, peak-vs-run) are ignored.
  const auto wrongName =
      dispatch::parseBenchCheckpoint(file.str(), "peak", grid, "<test>");
  EXPECT_EQ(wrongName.presentCount(), 0u);
}

TEST(Checkpoint, MismatchedGridFailsLoudly) {
  const std::vector<ScenarioSpec> grid = {quickSpec("uniform", "dhetpnoc", 0.001, 1)};
  const std::string file =
      "{\"bench\":\"x\",\"records\":[\n"
      "  {\"name\":\"run\",\"arch\":\"firefly\",\"pattern\":\"uniform\","
      "\"seed\":1,\"grid_index\":0}\n]}\n";
  EXPECT_THROW(dispatch::parseBenchCheckpoint(file, "run", grid, "<test>"),
               std::invalid_argument);  // arch mismatch

  // A spec_key (what pnoc_run actually stamps) pins the WHOLE spec, so a
  // record computed under ANY differing parameter — a changed measure
  // window, say, which no identity field would catch — is rejected.
  ScenarioSpec altered = grid[0];
  altered.params.measureCycles += 1;
  const std::string wrongKey =
      "{\"bench\":\"x\",\"records\":[\n"
      "  {\"name\":\"run\",\"spec_key\":\"" + dispatch::specKey(altered) +
      "\",\"grid_index\":0}\n]}\n";
  EXPECT_THROW(dispatch::parseBenchCheckpoint(wrongKey, "run", grid, "<test>"),
               std::invalid_argument);
  const std::string rightKey =
      "{\"bench\":\"x\",\"records\":[\n"
      "  {\"name\":\"run\",\"spec_key\":\"" + dispatch::specKey(grid[0]) +
      "\",\"grid_index\":0}\n]}\n";
  EXPECT_EQ(dispatch::parseBenchCheckpoint(rightKey, "run", grid, "<test>")
                .presentCount(),
            1u);

  // A load sweep varies ONLY the load, so the recorded load must be checked
  // too — otherwise an edited grid resumes silently with stale numbers.
  const std::string wrongLoad =
      "{\"bench\":\"x\",\"records\":[\n"
      "  {\"name\":\"run\",\"arch\":\"dhetpnoc\",\"pattern\":\"uniform\","
      "\"seed\":1,\"load\":0.002,\"grid_index\":0}\n]}\n";
  EXPECT_THROW(dispatch::parseBenchCheckpoint(wrongLoad, "run", grid, "<test>"),
               std::invalid_argument);

  const std::string wrongSet =
      "{\"bench\":\"x\",\"records\":[\n"
      "  {\"name\":\"run\",\"arch\":\"dhetpnoc\",\"pattern\":\"uniform\","
      "\"seed\":1,\"bandwidth_set\":3,\"grid_index\":0}\n]}\n";
  EXPECT_THROW(dispatch::parseBenchCheckpoint(wrongSet, "run", grid, "<test>"),
               std::invalid_argument);

  const std::string outOfRange =
      "{\"bench\":\"x\",\"records\":[\n"
      "  {\"name\":\"run\",\"grid_index\":7}\n]}\n";
  EXPECT_THROW(dispatch::parseBenchCheckpoint(outOfRange, "run", grid, "<test>"),
               std::invalid_argument);

  const std::string duplicate =
      "{\"bench\":\"x\",\"records\":[\n"
      "  {\"name\":\"run\",\"grid_index\":0},\n"
      "  {\"name\":\"run\",\"grid_index\":0}\n]}\n";
  EXPECT_THROW(dispatch::parseBenchCheckpoint(duplicate, "run", grid, "<test>"),
               std::invalid_argument);

  // Truncated by a kill mid-write: the one damage shape a crash legitimately
  // produces.  Tolerated as valid-but-missing (every intact record line is
  // still harvested; here there are none), NOT rejected — a daemon restart
  // must resume through such a file.
  const auto truncated = dispatch::parseBenchCheckpoint(
      "{\"bench\":\"x\",\"records\":[", "run", grid, "<test>");
  EXPECT_EQ(truncated.presentCount(), 0u);
}

TEST(Checkpoint, MissingFileIsAnEmptyCheckpoint) {
  const std::vector<ScenarioSpec> grid = {quickSpec("uniform", "dhetpnoc", 0.001, 1)};
  const auto checkpoint =
      dispatch::loadBenchCheckpoint("/nonexistent/BENCH_x.json", "run", grid);
  EXPECT_EQ(checkpoint.presentCount(), 0u);
  EXPECT_EQ(checkpoint.rawByIndex.size(), grid.size());
}

TEST(Checkpoint, WriterMatchesJsonRecorderFormat) {
  // The incremental checkpoint writer and JsonRecorder::write must agree
  // byte for byte — that equivalence is what makes a resumed file identical
  // to an uninterrupted run's.
  const std::vector<std::string> raw = {"{\"name\":\"run\",\"gbps\":1}",
                                        "{\"name\":\"run\",\"gbps\":2}"};
  const std::string dir = ::testing::TempDir();
  const std::string path = dispatch::writeBenchFile(dir, "writer_compare", raw);
  ASSERT_FALSE(path.empty());
  std::ifstream in(path);
  std::ostringstream actual;
  actual << in.rdbuf();

  JsonRecorder recorder("writer_compare");
  for (const std::string& record : raw) recorder.addRaw(record);
  const std::string recorderPath = recorder.write(dir);
  std::ifstream in2(recorderPath);
  std::ostringstream expected;
  expected << in2.rdbuf();

  EXPECT_EQ(actual.str(), expected.str());
  std::remove(path.c_str());
}

TEST(JsonRecord, RawRecordsSerializeVerbatimAndIgnoreFieldCalls) {
  JsonRecord raw = JsonRecord::fromSerialized("{\"name\":\"x\",\"v\":1}");
  raw.number("extra", 2.0).integer("more", 3).text("t", "s");
  EXPECT_EQ(raw.serialize(), "{\"name\":\"x\",\"v\":1}");
}

}  // namespace
}  // namespace pnoc::scenario

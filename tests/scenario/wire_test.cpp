// Wire-format tests: RunMetrics, PeakSearchResult and the scenario results
// must round-trip through JSON byte-identically — that exactness is the
// foundation of SubprocessBackend's bit-identical-merge guarantee (a metric
// that crossed a process boundary must be indistinguishable from one
// computed in-process).
#include "scenario/wire.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "scenario/json_util.hpp"

namespace pnoc::scenario {
namespace {

metrics::RunMetrics syntheticMetrics() {
  metrics::RunMetrics m;
  m.measuredCycles = 123456;
  m.measuredSeconds = 123456 / 2.5e9;  // not exactly representable: the
                                       // shortest-round-trip formatter must
                                       // preserve it bit for bit
  m.packetsDelivered = 987;
  m.bitsDelivered = 987 * 4096;
  m.latencyCyclesSum = 54321;
  m.latency.record(3);
  m.latency.record(17);
  m.latency.record(17);
  m.latency.record(900);
  m.packetsOffered = 1000;
  m.packetsRefused = 13;
  m.packetsGenerated = 1013;
  m.headRetries = 7;
  m.reservationsIssued = 450;
  m.reservationFailures = 21;
  m.ledger.add(photonic::EnergyCategory::kLaunch, 0.123456789);
  m.ledger.add(photonic::EnergyCategory::kModulation, 1.0 / 3.0);
  m.ledger.add(photonic::EnergyCategory::kTuning, 2.4);
  m.ledger.add(photonic::EnergyCategory::kPhotonicBuffer, 0.078125);
  m.ledger.add(photonic::EnergyCategory::kElectricalRouter, 625.625);
  m.ledger.add(photonic::EnergyCategory::kElectricalLink, 1e-7);
  return m;
}

metrics::PeakSearchResult syntheticSearch() {
  metrics::PeakSearchResult search;
  double load = 0.0002;
  for (int i = 0; i < 3; ++i) {
    metrics::LoadPoint point;
    point.offeredLoad = load;
    point.metrics = syntheticMetrics();
    point.metrics.packetsDelivered += static_cast<std::uint64_t>(i);
    search.sweep.push_back(point);
    load *= 1.5;
  }
  search.peak = search.sweep[1];
  return search;
}

TEST(Wire, RunMetricsRoundTripIsByteIdentical) {
  const metrics::RunMetrics original = syntheticMetrics();
  const std::string json = wire::toJson(original);
  const metrics::RunMetrics back = wire::runMetricsFromJson(json);
  EXPECT_EQ(wire::toJson(back), json);
}

TEST(Wire, RunMetricsRoundTripPreservesEveryField) {
  const metrics::RunMetrics original = syntheticMetrics();
  const metrics::RunMetrics back = wire::runMetricsFromJson(wire::toJson(original));
  EXPECT_EQ(back.measuredCycles, original.measuredCycles);
  EXPECT_EQ(back.measuredSeconds, original.measuredSeconds);  // bit-exact
  EXPECT_EQ(back.packetsDelivered, original.packetsDelivered);
  EXPECT_EQ(back.bitsDelivered, original.bitsDelivered);
  EXPECT_EQ(back.latencyCyclesSum, original.latencyCyclesSum);
  EXPECT_EQ(back.latency.count(), original.latency.count());
  EXPECT_EQ(back.latency.min(), original.latency.min());
  EXPECT_EQ(back.latency.max(), original.latency.max());
  EXPECT_EQ(back.latency.sumCycles(), original.latency.sumCycles());
  EXPECT_DOUBLE_EQ(back.latency.quantile(0.99), original.latency.quantile(0.99));
  EXPECT_EQ(back.packetsOffered, original.packetsOffered);
  EXPECT_EQ(back.packetsRefused, original.packetsRefused);
  EXPECT_EQ(back.packetsGenerated, original.packetsGenerated);
  EXPECT_EQ(back.headRetries, original.headRetries);
  EXPECT_EQ(back.reservationsIssued, original.reservationsIssued);
  EXPECT_EQ(back.reservationFailures, original.reservationFailures);
  EXPECT_EQ(back.ledger.total(), original.ledger.total());  // bit-exact
  EXPECT_EQ(back.ledger.of(photonic::EnergyCategory::kElectricalLink),
            original.ledger.of(photonic::EnergyCategory::kElectricalLink));
  // Derived quantities (what BENCH records publish) follow exactly.
  EXPECT_EQ(back.deliveredGbps(), original.deliveredGbps());
  EXPECT_EQ(back.energyPerPacketPj(), original.energyPerPacketPj());
}

TEST(Wire, EmptyRunMetricsRoundTrip) {
  const metrics::RunMetrics original;  // all zero, empty histogram
  const std::string json = wire::toJson(original);
  const metrics::RunMetrics back = wire::runMetricsFromJson(json);
  EXPECT_EQ(wire::toJson(back), json);
  EXPECT_EQ(back.latency.count(), 0u);
  EXPECT_EQ(back.latency.min(), 0u);  // empty-histogram sentinel restored
}

TEST(Wire, PeakSearchResultRoundTripIsByteIdentical) {
  const metrics::PeakSearchResult original = syntheticSearch();
  const std::string json = wire::toJson(original);
  const metrics::PeakSearchResult back = wire::peakSearchFromJson(json);
  EXPECT_EQ(wire::toJson(back), json);
  ASSERT_EQ(back.sweep.size(), original.sweep.size());
  EXPECT_EQ(back.peak.offeredLoad, original.peak.offeredLoad);
}

TEST(Wire, ScenarioResultAndPeakRoundTrip) {
  ScenarioResult result;
  result.spec.set("pattern", "skewed3");
  result.spec.set("load", "0.00125");
  result.spec.label = "wire \"quoted\" label";
  result.metrics = syntheticMetrics();
  const std::string resultJson = wire::toJson(result);
  EXPECT_EQ(wire::toJson(wire::scenarioResultFromJson(resultJson)), resultJson);

  ScenarioPeak peak;
  peak.spec.set("arch", "firefly");
  peak.search = syntheticSearch();
  const std::string peakJson = wire::toJson(peak);
  EXPECT_EQ(wire::toJson(wire::scenarioPeakFromJson(peakJson)), peakJson);
}

TEST(Wire, JobAndReplyLinesRoundTrip) {
  ScenarioJob job;
  job.op = ScenarioJob::Op::kFindPeak;
  job.spec.set("pattern", "tornado");
  const std::string line = wire::jobLine(42, job);
  std::size_t index = 0;
  const ScenarioJob back = wire::parseJobLine(line, index);
  EXPECT_EQ(index, 42u);
  EXPECT_EQ(back.op, ScenarioJob::Op::kFindPeak);
  EXPECT_EQ(back.spec.toJson(), job.spec.toJson());

  ScenarioOutcome outcome;
  outcome.op = ScenarioJob::Op::kRun;
  outcome.metrics = syntheticMetrics();
  const wire::WorkerReply reply = wire::parseReplyLine(wire::outcomeLine(7, outcome));
  EXPECT_TRUE(reply.ok);
  EXPECT_EQ(reply.index, 7u);
  EXPECT_EQ(wire::toJson(reply.outcome.metrics), wire::toJson(outcome.metrics));

  const wire::WorkerReply error =
      wire::parseReplyLine(wire::errorLine(3, "network \"exploded\"\nbadly"));
  EXPECT_FALSE(error.ok);
  EXPECT_EQ(error.index, 3u);
  EXPECT_EQ(error.error, "network \"exploded\"\nbadly");
}

TEST(JsonString, DecodesUnicodeEscapesToUtf8) {
  // BMP code points: 1-, 2- and 3-byte UTF-8, upper- and lower-case hex.
  EXPECT_EQ(JsonValue::parse("\"\\u0041\"").asString(), "A");
  EXPECT_EQ(JsonValue::parse("\"\\u00E9\"").asString(), "\xC3\xA9");    // é
  EXPECT_EQ(JsonValue::parse("\"\\u20ac\"").asString(), "\xE2\x82\xAC");  // €
  // Supplementary plane via a surrogate pair: U+1F600.
  EXPECT_EQ(JsonValue::parse("\"\\uD83D\\uDE00\"").asString(),
            "\xF0\x9F\x98\x80");
  // Escapes compose with surrounding literal text.
  EXPECT_EQ(JsonValue::parse("\"a\\u0009b\"").asString(), "a\tb");
}

TEST(JsonString, RejectsMalformedUnicodeEscapes) {
  EXPECT_THROW(JsonValue::parse("\"\\u12\""), std::invalid_argument);    // short
  EXPECT_THROW(JsonValue::parse("\"\\u12g4\""), std::invalid_argument);  // bad hex
  EXPECT_THROW(JsonValue::parse("\"\\uD83D\""), std::invalid_argument);  // lone high
  EXPECT_THROW(JsonValue::parse("\"\\uD83Dx\""), std::invalid_argument);
  EXPECT_THROW(JsonValue::parse("\"\\uD83D\\u0041\""),
               std::invalid_argument);  // high + non-surrogate
  EXPECT_THROW(JsonValue::parse("\"\\uDE00\""), std::invalid_argument);  // lone low
}

TEST(JsonString, EscapeRoundTripIsByteIdentical) {
  // Every byte a metrics label or error message can carry must survive
  // escape -> parse unchanged, including control characters (which JSON
  // forbids raw) and multi-byte UTF-8 (which passes through verbatim).
  std::string raw;
  for (int b = 1; b < 0x20; ++b) raw += static_cast<char>(b);
  raw += "plain \"quoted\" back\\slash ";
  raw += "\xC3\xA9\xE2\x82\xAC\xF0\x9F\x98\x80";  // é € 😀 as UTF-8
  const std::string wire = "\"" + jsonEscape(raw) + "\"";
  EXPECT_EQ(JsonValue::parse(wire).asString(), raw);
}

TEST(Wire, MalformedInputIsRejected) {
  EXPECT_THROW(wire::runMetricsFromJson("{\"measured_cycles\":1}"),
               std::invalid_argument);  // missing fields
  EXPECT_THROW(wire::runMetricsFromJson("not json"), std::invalid_argument);
  std::size_t index = 0;
  EXPECT_THROW(wire::parseJobLine("{\"op\":\"walk\",\"index\":0,\"spec\":{}}", index),
               std::invalid_argument);  // bad op
  EXPECT_THROW(wire::parseReplyLine("{\"index\":0,\"op\":\"run\"}"),
               std::invalid_argument);  // reply without payload
}

}  // namespace
}  // namespace pnoc::scenario

// Trailing-corruption tolerance for BENCH checkpoints (and, one layer up,
// resume byte-identity through that damage).
//
// A checkpoint is rewritten atomically, but the file can still end damaged —
// a kill mid-append from an older tool, a torn copy, stray bytes from a
// crashed editor.  The policy under test: damage confined to the LAST record
// line (or to non-record trailing bytes) demotes that record to
// valid-but-missing, so resume re-dispatches exactly the affected indices
// and the merged file comes out byte-identical to an uninterrupted run.
// Damage anywhere else still fails loudly.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "scenario/dispatch/checkpoint.hpp"
#include "scenario/execution_backend.hpp"

namespace pnoc::scenario {
namespace {

ScenarioSpec quickSpec(double load, std::uint64_t seed) {
  ScenarioSpec spec;
  spec.set("pattern", "uniform");
  spec.set("arch", "firefly");
  spec.params.offeredLoad = load;
  spec.params.seed = seed;
  spec.params.warmupCycles = 100;
  spec.params.measureCycles = 400;
  return spec;
}

std::string readAll(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

/// A 3-spec grid with its full BENCH text and per-index records.
struct Fixture {
  std::vector<ScenarioSpec> grid;
  std::vector<std::string> records;
  std::string fullText;

  Fixture() {
    for (int i = 0; i < 3; ++i) {
      grid.push_back(quickSpec(0.001 + 0.001 * i, 40 + i));
    }
    for (std::size_t i = 0; i < grid.size(); ++i) {
      const ScenarioOutcome outcome =
          executeJob({ScenarioJob::Op::kRun, grid[i]});
      records.push_back(dispatch::serializedOutcomeRecord(outcome, i));
    }
    const std::string dir = ::testing::TempDir();
    const std::string path = dispatch::writeBenchFile(dir, "corrupt_fixture", records);
    fullText = readAll(path);
    std::remove(path.c_str());
  }
};

const Fixture& fixture() {
  static const Fixture fix;
  return fix;
}

TEST(CheckpointCorruption, TruncatedLastRecordLineIsValidButMissing) {
  const Fixture& fix = fixture();
  // Chop the file mid-way through the LAST record line (a torn write).
  const std::size_t lastRecord = fix.fullText.rfind("\n  {");
  const std::string torn = fix.fullText.substr(0, lastRecord + 20);
  const dispatch::BenchCheckpoint checkpoint =
      dispatch::parseBenchCheckpoint(torn, "run", fix.grid, "test");
  EXPECT_EQ(checkpoint.presentCount(), 2u);
  ASSERT_EQ(checkpoint.missingIndices(), (std::vector<std::size_t>{2}));
  // The surviving records are byte-exact.
  EXPECT_EQ(checkpoint.rawByIndex[0], fix.records[0]);
  EXPECT_EQ(checkpoint.rawByIndex[1], fix.records[1]);
}

TEST(CheckpointCorruption, GarbageTrailingLineIsTolerated) {
  const Fixture& fix = fixture();
  // Stray bytes appended after the closing "]}" that happen to look like
  // the start of a record line.
  const dispatch::BenchCheckpoint checkpoint = dispatch::parseBenchCheckpoint(
      fix.fullText + "  {\"run\" GARBAGE", "run", fix.grid, "test");
  EXPECT_EQ(checkpoint.presentCount(), 3u);
  EXPECT_TRUE(checkpoint.missingIndices().empty());
}

TEST(CheckpointCorruption, MidFileDamageStillFailsLoudly) {
  const Fixture& fix = fixture();
  // Mangle the FIRST record's line: that is not a crash artifact — refuse.
  std::string damaged = fix.fullText;
  const std::size_t first = damaged.find("  {");
  damaged.replace(first, 12, "  {\"run\" ???");
  EXPECT_THROW(dispatch::parseBenchCheckpoint(damaged, "run", fix.grid, "test"),
               std::invalid_argument);
}

TEST(CheckpointCorruption, ResumeThroughTornTailIsByteIdentical) {
  const Fixture& fix = fixture();
  const std::string dir = ::testing::TempDir();
  // Write the torn checkpoint to disk the way a crashed tool would leave it.
  const std::size_t lastRecord = fix.fullText.rfind("\n  {");
  const std::string benchPath = dir + "/BENCH_corrupt_fixture.json";
  {
    std::ofstream out(benchPath);
    out << fix.fullText.substr(0, lastRecord + 14);
  }
  // Resume: load, re-dispatch exactly the demoted index, merge, rewrite.
  dispatch::BenchCheckpoint checkpoint =
      dispatch::loadBenchCheckpoint(benchPath, "run", fix.grid);
  ASSERT_EQ(checkpoint.missingIndices(), (std::vector<std::size_t>{2}));
  for (const std::size_t index : checkpoint.missingIndices()) {
    const ScenarioOutcome outcome =
        executeJob({ScenarioJob::Op::kRun, fix.grid[index]});
    checkpoint.rawByIndex[index] =
        dispatch::serializedOutcomeRecord(outcome, index);
  }
  std::vector<std::string> merged;
  for (const auto& raw : checkpoint.rawByIndex) merged.push_back(*raw);
  dispatch::writeBenchFile(dir, "corrupt_fixture", merged);
  EXPECT_EQ(readAll(benchPath), fix.fullText);
  std::remove(benchPath.c_str());
}

}  // namespace
}  // namespace pnoc::scenario

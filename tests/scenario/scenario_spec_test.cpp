// ScenarioSpec binding-table tests: the key=value and JSON forms must
// round-trip byte-identically (they are the scenario interchange format for
// sweeps, sharding and replay), unknown keys and malformed values must fail
// loudly, and the generated help must cover every binding.
#include "scenario/scenario_spec.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace pnoc::scenario {
namespace {

ScenarioSpec nonDefaultSpec() {
  ScenarioSpec spec;
  spec.set("arch", "firefly");
  spec.set("set", "2");
  spec.set("pattern", "hotspot:frac=0.3,hot=5");
  spec.set("load", "0.00125");
  spec.set("seed", "987654321");
  spec.set("warmup", "123");
  spec.set("measure", "4567");
  spec.set("reserved", "2");
  spec.set("gating", "false");
  spec.set("queue", "4");
  spec.set("arbiter", "matrix");
  spec.set("label", "round trip \"quoted\" label");
  return spec;
}

TEST(ScenarioSpec, SetWritesThroughToParameters) {
  const ScenarioSpec spec = nonDefaultSpec();
  EXPECT_EQ(spec.params.architecture, network::Architecture::kFirefly);
  EXPECT_EQ(spec.params.bandwidthSet.totalWavelengths, 256u);
  EXPECT_EQ(spec.params.pattern, "hotspot:frac=0.3,hot=5");
  EXPECT_DOUBLE_EQ(spec.params.offeredLoad, 0.00125);
  EXPECT_EQ(spec.params.seed, 987654321u);
  EXPECT_EQ(spec.params.warmupCycles, 123u);
  EXPECT_EQ(spec.params.measureCycles, 4567u);
  EXPECT_EQ(spec.params.reservedPerCluster, 2u);
  EXPECT_FALSE(spec.params.activityGating);
  EXPECT_EQ(spec.params.injectionQueuePackets, 4u);
  EXPECT_EQ(spec.params.coreRouter.arbiter, "matrix");
}

TEST(ScenarioSpec, KeyValueRoundTripIsByteIdentical) {
  const ScenarioSpec spec = nonDefaultSpec();
  const std::string text = spec.toKeyValueText();
  const ScenarioSpec back = ScenarioSpec::fromKeyValueText(text);
  EXPECT_EQ(text, back.toKeyValueText());
}

TEST(ScenarioSpec, JsonRoundTripIsByteIdentical) {
  const ScenarioSpec spec = nonDefaultSpec();
  const std::string json = spec.toJson();
  const ScenarioSpec back = ScenarioSpec::fromJson(json);
  EXPECT_EQ(json, back.toJson());
  // And the two forms describe the same spec.
  EXPECT_EQ(back.toKeyValueText(), spec.toKeyValueText());
}

TEST(ScenarioSpec, DefaultsRoundTripToo) {
  const ScenarioSpec spec;
  EXPECT_EQ(ScenarioSpec::fromJson(spec.toJson()).toJson(), spec.toJson());
  EXPECT_EQ(ScenarioSpec::fromKeyValueText(spec.toKeyValueText()).toKeyValueText(),
            spec.toKeyValueText());
}

TEST(ScenarioSpec, UnknownKeyIsRejected) {
  ScenarioSpec spec;
  EXPECT_THROW(spec.set("wavelenghts", "64"), std::invalid_argument);  // typo
  EXPECT_THROW(ScenarioSpec::fromKeyValueText("bogus=1\n"), std::invalid_argument);
  EXPECT_THROW(ScenarioSpec::fromJson(R"({"bogus":1})"), std::invalid_argument);
}

TEST(ScenarioSpec, MalformedValuesAreRejected) {
  ScenarioSpec spec;
  EXPECT_THROW(spec.set("load", "fast"), std::invalid_argument);
  EXPECT_THROW(spec.set("seed", "-3"), std::invalid_argument);
  EXPECT_THROW(spec.set("seed", " -3"), std::invalid_argument);  // stoull would wrap
  EXPECT_THROW(spec.set("seed", "+3"), std::invalid_argument);
  EXPECT_THROW(spec.set("seed", "12x"), std::invalid_argument);
  EXPECT_THROW(spec.set("arch", "fireflyy"), std::invalid_argument);
  EXPECT_THROW(spec.set("set", "4"), std::invalid_argument);
  EXPECT_THROW(spec.set("gating", "maybe"), std::invalid_argument);
}

TEST(ScenarioSpec, HelpListsEveryBindingKey) {
  const ScenarioSpec defaults;
  const std::string help = ScenarioSpec::helpText(defaults);
  for (const ScenarioField& field : ScenarioSpec::fields()) {
    EXPECT_NE(help.find("  " + field.key + "="), std::string::npos)
        << "help is missing key '" << field.key << "'";
  }
}

TEST(ScenarioSpec, ApplyOverridesConsumesOnlyBindingKeys) {
  sim::Config config;
  config.set("pattern", "tornado");
  config.set("load", "0.004");
  config.set("minMs", "50");  // binary-specific key, not a binding
  ScenarioSpec spec;
  spec.applyOverrides(config);
  EXPECT_EQ(spec.params.pattern, "tornado");
  EXPECT_DOUBLE_EQ(spec.params.offeredLoad, 0.004);
  const auto leftover = config.unconsumedKeys();
  ASSERT_EQ(leftover.size(), 1u);
  EXPECT_EQ(leftover[0], "minMs");
}

TEST(ScenarioSpec, BandwidthSetIndexRecognizesStandardSets) {
  EXPECT_EQ(bandwidthSetIndex(traffic::BandwidthSet::set1()), 1);
  EXPECT_EQ(bandwidthSetIndex(traffic::BandwidthSet::set2()), 2);
  EXPECT_EQ(bandwidthSetIndex(traffic::BandwidthSet::set3()), 3);
  traffic::BandwidthSet custom = traffic::BandwidthSet::set1();
  custom.totalWavelengths = 128;
  EXPECT_FALSE(bandwidthSetIndex(custom).has_value());
  ScenarioSpec spec;
  spec.params.bandwidthSet = custom;
  EXPECT_THROW(spec.get("set"), std::invalid_argument);
}

TEST(ScenarioSpec, ParamsBuildAndRunThroughTheNetwork) {
  // A spec is a complete run description: the default spec must validate.
  ScenarioSpec spec;
  EXPECT_NO_THROW(spec.params.validate());
}

}  // namespace
}  // namespace pnoc::scenario

// Pipelined dealing (policy.pipeline > 1) and graceful-interrupt coverage
// for the batch streaming pool: pipelining must change wall-clock behavior
// only — results stay byte-identical and in input order — and a pending
// SIGINT/SIGTERM must abort the dispatch with a named exception so the
// driver's failure path flushes its checkpoint.
#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "scenario/dispatch/streaming_worker_pool.hpp"
#include "scenario/execution_backend.hpp"
#include "scenario/wire.hpp"
#include "sim/interrupt.hpp"

namespace pnoc::scenario {
namespace {

/// Scoped env override (restored on destruction).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    hadOld_ = old != nullptr;
    if (hadOld_) old_ = old;
    if (value == nullptr) {
      ::unsetenv(name);
    } else {
      ::setenv(name, value, 1);
    }
  }
  ~ScopedEnv() {
    if (hadOld_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  bool hadOld_ = false;
  std::string old_;
};

std::vector<ScenarioJob> quickJobs(std::size_t count) {
  std::vector<ScenarioJob> jobs;
  for (std::size_t j = 0; j < count; ++j) {
    ScenarioSpec spec;
    spec.set("pattern", j % 2 == 0 ? "uniform" : "skewed3");
    spec.set("arch", "firefly");
    spec.params.offeredLoad = 0.001 + 0.0005 * static_cast<double>(j % 3);
    spec.params.seed = 60 + j;
    spec.params.warmupCycles = 100;
    spec.params.measureCycles = 400;
    jobs.push_back({ScenarioJob::Op::kRun, spec});
  }
  return jobs;
}

std::vector<std::unique_ptr<dispatch::WorkerTransport>> localWorkers(
    std::size_t count) {
  std::vector<std::unique_ptr<dispatch::WorkerTransport>> transports;
  for (std::size_t w = 0; w < count; ++w) {
    transports.push_back(std::make_unique<dispatch::LocalProcessTransport>());
  }
  return transports;
}

TEST(StreamingPipeline, DepthTwoIsByteIdenticalAndReachesTheDepth) {
  const std::vector<ScenarioJob> jobs = quickJobs(5);
  std::vector<ScenarioOutcome> expected;
  for (const ScenarioJob& job : jobs) expected.push_back(executeJob(job));

  // Slow every reply so the dealer demonstrably queues a second line while
  // the first job simulates.
  ScopedEnv fault("PNOC_TEST_FAULT", "slow@*:ms=30");
  dispatch::FaultPolicy policy;
  policy.pipeline = 2;
  dispatch::StreamingWorkerPool pool(localWorkers(1), policy);
  const std::vector<ScenarioOutcome> actual = pool.execute(jobs);

  EXPECT_GE(pool.stats().maxInFlight, 2u);
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t j = 0; j < expected.size(); ++j) {
    EXPECT_EQ(actual[j].spec.toJson(), expected[j].spec.toJson()) << "job " << j;
    EXPECT_EQ(wire::toJson(actual[j].metrics), wire::toJson(expected[j].metrics))
        << "job " << j;
  }
}

TEST(StreamingInterrupt, PendingInterruptAbortsTheDispatchByName) {
  sim::installInterruptHandlers();
  sim::raiseInterruptForTest();
  dispatch::StreamingWorkerPool pool(localWorkers(1));
  try {
    pool.execute(quickJobs(2));
    sim::clearInterruptForTest();
    FAIL() << "a pending interrupt must abort the dispatch";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("interrupt"), std::string::npos);
  }
  sim::clearInterruptForTest();
  EXPECT_FALSE(sim::interruptRequested());

  // Cleared: the same pool shape dispatches normally again.
  dispatch::StreamingWorkerPool again(localWorkers(1));
  EXPECT_EQ(again.execute(quickJobs(1)).size(), 1u);
}

}  // namespace
}  // namespace pnoc::scenario

// Fault-injection matrix for the dispatch layer's fault-tolerance paths.
//
// PNOC_TEST_FAULT (scenario/fault_injection.hpp) scripts a worker to
// misbehave deterministically on a chosen job; every test then asserts one
// of the two acceptable outcomes — the batch completes BYTE-IDENTICAL to an
// in-process run (the fault was absorbed by retry/respawn/deadline
// machinery), or it degrades into deterministic per-job failure records
// (fail_soft) / a loud exception naming the worker and job.  Silent
// corruption — a wrong number in a merged result — is never acceptable and
// is what expectSameOutcomes guards.
//
// Workers are re-execs of THIS binary (tests/main.cpp handles
// --pnoc-worker), so the injected faults run through the real worker loop
// and the real recovery paths.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "scenario/dispatch/fault_policy.hpp"
#include "scenario/dispatch/hosts_file.hpp"
#include "scenario/dispatch/streaming_backend.hpp"
#include "scenario/dispatch/streaming_worker_pool.hpp"
#include "scenario/dispatch/worker_transport.hpp"
#include "scenario/fault_injection.hpp"
#include "scenario/in_process_backend.hpp"
#include "scenario/subprocess_backend.hpp"
#include "scenario/wire.hpp"

namespace pnoc::scenario {
namespace {

using dispatch::FaultPolicy;
using dispatch::HostEntry;
using dispatch::StreamingBackend;

ScenarioSpec quickSpec(const std::string& pattern, const std::string& arch,
                       double load, std::uint64_t seed,
                       std::uint64_t measureCycles = 400) {
  ScenarioSpec spec;
  spec.set("pattern", pattern);
  spec.set("arch", arch);
  spec.params.offeredLoad = load;
  spec.params.seed = seed;
  spec.params.warmupCycles = 100;
  spec.params.measureCycles = measureCycles;
  return spec;
}

std::vector<ScenarioJob> smallBatch(std::uint64_t seedBase, std::size_t count = 5) {
  std::vector<ScenarioJob> jobs;
  for (std::uint64_t s = 0; s < count; ++s) {
    jobs.push_back({ScenarioJob::Op::kRun,
                    quickSpec("uniform", "dhetpnoc", 0.001, seedBase + s)});
  }
  return jobs;
}

/// Scoped env override (restored on destruction).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    hadOld_ = old != nullptr;
    if (hadOld_) old_ = old;
    if (value == nullptr) {
      ::unsetenv(name);
    } else {
      ::setenv(name, value, 1);
    }
  }
  ~ScopedEnv() {
    if (hadOld_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  bool hadOld_ = false;
  std::string old_;
};

/// A fresh once-lock path for this test (removed on destruction).
class OnceLock {
 public:
  OnceLock() {
    static int counter = 0;
    path_ = ::testing::TempDir() + "pnoc_fault_once_" + std::to_string(::getpid()) +
            "_" + std::to_string(counter++) + ".lock";
    std::remove(path_.c_str());
  }
  ~OnceLock() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

void expectSameOutcomes(const std::vector<ScenarioOutcome>& actual,
                        const std::vector<ScenarioOutcome>& expected,
                        const std::string& context) {
  ASSERT_EQ(actual.size(), expected.size()) << context;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_FALSE(actual[i].failed) << context << " job=" << i;
    EXPECT_EQ(actual[i].op, expected[i].op) << context << " job=" << i;
    EXPECT_EQ(actual[i].spec.toJson(), expected[i].spec.toJson())
        << context << " job=" << i;
    EXPECT_EQ(wire::toJson(actual[i].metrics), wire::toJson(expected[i].metrics))
        << context << " job=" << i;
    EXPECT_EQ(wire::toJson(actual[i].search), wire::toJson(expected[i].search))
        << context << " job=" << i;
  }
}

std::vector<ScenarioOutcome> inProcessReference(const std::vector<ScenarioJob>& jobs) {
  InProcessBackend backend(2);
  return backend.execute(jobs);
}

/// Fast-retry policy: the matrix wants the recovery PATH, not the pacing.
FaultPolicy quickPolicy() {
  FaultPolicy policy;
  policy.backoffBaseMs = 0;
  policy.graceMs = 1500;
  return policy;
}

// --- spec parser ---

TEST(FaultSpec, ParsesKindsIndicesAndOptions) {
  const auto faults = testfault::parseFaultSpec(
      "crash@2:once=/tmp/x.lock:code=9,hang@*:ignoreterm=1,slow@3:ms=50");
  ASSERT_EQ(faults.size(), 3u);
  EXPECT_EQ(faults[0].kind, testfault::Kind::kCrash);
  EXPECT_FALSE(faults[0].anyIndex);
  EXPECT_EQ(faults[0].index, 2u);
  EXPECT_EQ(faults[0].oncePath, "/tmp/x.lock");
  EXPECT_EQ(faults[0].exitCode, 9);
  EXPECT_EQ(faults[1].kind, testfault::Kind::kHang);
  EXPECT_TRUE(faults[1].anyIndex);
  EXPECT_TRUE(faults[1].ignoreTerm);
  EXPECT_EQ(faults[2].kind, testfault::Kind::kSlow);
  EXPECT_EQ(faults[2].ms, 50u);
}

TEST(FaultSpec, RejectsMalformedClauses) {
  EXPECT_THROW(testfault::parseFaultSpec(""), std::invalid_argument);
  EXPECT_THROW(testfault::parseFaultSpec("explode@1"), std::invalid_argument);
  EXPECT_THROW(testfault::parseFaultSpec("crash"), std::invalid_argument);
  EXPECT_THROW(testfault::parseFaultSpec("crash@x"), std::invalid_argument);
  EXPECT_THROW(testfault::parseFaultSpec("crash@1:nope=2"), std::invalid_argument);
  EXPECT_THROW(testfault::parseFaultSpec("slow@1:ms=abc"), std::invalid_argument);
  EXPECT_THROW(testfault::parseFaultSpec("crash@1:once="), std::invalid_argument);
}

// --- fault policy knobs ---

TEST(FaultPolicyKnobs, SetPolicyFieldValidatesDomains) {
  FaultPolicy policy;
  dispatch::setPolicyField(policy, "retries", 3);
  dispatch::setPolicyField(policy, "fail_soft", 1);
  dispatch::setPolicyField(policy, "job_deadline_ms", 1234);
  EXPECT_EQ(policy.retries, 3u);
  EXPECT_TRUE(policy.failSoft);
  EXPECT_EQ(policy.jobDeadlineMs, 1234u);
  EXPECT_THROW(dispatch::setPolicyField(policy, "fail_soft", 2),
               std::invalid_argument);
  EXPECT_THROW(dispatch::setPolicyField(policy, "connect_timeout_ms", 0),
               std::invalid_argument);
  EXPECT_THROW(dispatch::setPolicyField(policy, "no_such_knob", 1),
               std::invalid_argument);
  for (const std::string& key : dispatch::policyKeys()) {
    EXPECT_TRUE(dispatch::isPolicyKey(key)) << key;
  }
  EXPECT_FALSE(dispatch::isPolicyKey("retry"));
}

TEST(FaultPolicyKnobs, BackoffDoublesAndCaps) {
  FaultPolicy policy;
  policy.backoffBaseMs = 100;
  policy.backoffCapMs = 500;
  EXPECT_EQ(dispatch::backoffMsForAttempt(policy, 1), 100u);
  EXPECT_EQ(dispatch::backoffMsForAttempt(policy, 2), 200u);
  EXPECT_EQ(dispatch::backoffMsForAttempt(policy, 3), 400u);
  EXPECT_EQ(dispatch::backoffMsForAttempt(policy, 4), 500u);
  EXPECT_EQ(dispatch::backoffMsForAttempt(policy, 10), 500u);
  policy.backoffBaseMs = 0;
  EXPECT_EQ(dispatch::backoffMsForAttempt(policy, 3), 0u);
}

TEST(HostsFleet, PolicyObjectAndPerHostTimeoutParse) {
  const auto fleet = dispatch::parseHostsFleetText(
      R"({"hosts": [{"workers": 2, "connect_timeout_ms": 700}],
          "policy": {"retries": 4, "job_deadline_ms": 9000, "fail_soft": true}})",
      "inline");
  ASSERT_EQ(fleet.hosts.size(), 1u);
  EXPECT_EQ(fleet.hosts[0].workers, 2u);
  EXPECT_EQ(fleet.hosts[0].connectTimeoutMs, 700u);
  EXPECT_EQ(fleet.policy.retries, 4u);
  EXPECT_EQ(fleet.policy.jobDeadlineMs, 9000u);
  EXPECT_TRUE(fleet.policy.failSoft);
}

TEST(HostsFleet, RejectsUnknownPolicyKeysAndZeroTimeouts) {
  EXPECT_THROW(dispatch::parseHostsFleetText(
                   R"({"hosts": [{}], "policy": {"retrys": 1}})", "inline"),
               std::invalid_argument);
  EXPECT_THROW(dispatch::parseHostsFleetText(
                   R"([{"connect_timeout_ms": 0}])", "inline"),
               std::invalid_argument);
  EXPECT_THROW(dispatch::parseHostsFleetText(R"({"policy": {}})", "inline"),
               std::invalid_argument)
      << "object form without hosts must not parse";
}

// --- the injection matrix: absorbed faults are byte-identical ---

TEST(FaultMatrix, CrashOnceIsRetriedByteIdentical) {
  OnceLock lock;
  ScopedEnv fault("PNOC_TEST_FAULT", ("crash@2:once=" + lock.path()).c_str());
  const auto jobs = smallBatch(300);
  const auto expected = inProcessReference(jobs);
  StreamingBackend streaming(2, "", quickPolicy());
  const auto actual = streaming.execute(jobs);
  expectSameOutcomes(actual, expected, "crash-once");
  EXPECT_EQ(streaming.lastStats().retries, 1u);
  EXPECT_GE(streaming.lastStats().respawns, 1u)
      << "the crashed slot should have been respawned";
}

TEST(FaultMatrix, GarbageReplyIsAProtocolDeathThenRetried) {
  OnceLock lock;
  ScopedEnv fault("PNOC_TEST_FAULT", ("garbage@1:once=" + lock.path()).c_str());
  const auto jobs = smallBatch(310);
  const auto expected = inProcessReference(jobs);
  StreamingBackend streaming(2, "", quickPolicy());
  const auto actual = streaming.execute(jobs);
  expectSameOutcomes(actual, expected, "garbage-reply");
  EXPECT_EQ(streaming.lastStats().protocolDeaths, 1u);
  EXPECT_EQ(streaming.lastStats().retries, 1u);
}

TEST(FaultMatrix, TruncatedReplyAtEofIsAProtocolDeathThenRetried) {
  OnceLock lock;
  ScopedEnv fault("PNOC_TEST_FAULT", ("truncate@1:once=" + lock.path()).c_str());
  const auto jobs = smallBatch(320);
  const auto expected = inProcessReference(jobs);
  StreamingBackend streaming(2, "", quickPolicy());
  const auto actual = streaming.execute(jobs);
  expectSameOutcomes(actual, expected, "truncated-reply");
  EXPECT_EQ(streaming.lastStats().protocolDeaths, 1u);
}

TEST(FaultMatrix, DuplicateReplyIsAProtocolDeath) {
  OnceLock lock;
  ScopedEnv fault("PNOC_TEST_FAULT", ("dup@1:once=" + lock.path()).c_str());
  const auto jobs = smallBatch(330);
  const auto expected = inProcessReference(jobs);
  StreamingBackend streaming(2, "", quickPolicy());
  const auto actual = streaming.execute(jobs);
  expectSameOutcomes(actual, expected, "duplicate-reply");
  EXPECT_GE(streaming.lastStats().protocolDeaths, 1u)
      << "the duplicating worker must be killed, not trusted";
}

TEST(FaultMatrix, WrongIndexReplyIsAProtocolDeathThenRetried) {
  OnceLock lock;
  ScopedEnv fault("PNOC_TEST_FAULT", ("wrongindex@1:once=" + lock.path()).c_str());
  const auto jobs = smallBatch(340);
  const auto expected = inProcessReference(jobs);
  StreamingBackend streaming(2, "", quickPolicy());
  const auto actual = streaming.execute(jobs);
  expectSameOutcomes(actual, expected, "wrong-index-reply");
  EXPECT_EQ(streaming.lastStats().protocolDeaths, 1u);
  EXPECT_EQ(streaming.lastStats().retries, 1u);
}

TEST(FaultMatrix, SlowReplyIsJustSlow) {
  ScopedEnv fault("PNOC_TEST_FAULT", "slow@*:ms=30");
  const auto jobs = smallBatch(350, 3);
  const auto expected = inProcessReference(jobs);
  StreamingBackend streaming(2, "", quickPolicy());
  const auto actual = streaming.execute(jobs);
  expectSameOutcomes(actual, expected, "slow-reply");
  EXPECT_EQ(streaming.lastStats().retries, 0u);
  EXPECT_EQ(streaming.lastStats().protocolDeaths, 0u);
}

// --- per-job deadlines ---

TEST(FaultMatrix, HungWorkerIsKilledAtTheJobDeadlineAndTheJobRetried) {
  OnceLock lock;
  ScopedEnv fault("PNOC_TEST_FAULT", ("hang@2:once=" + lock.path()).c_str());
  const auto jobs = smallBatch(360);
  const auto expected = inProcessReference(jobs);
  FaultPolicy policy = quickPolicy();
  policy.jobDeadlineMs = 1000;  // far above a real job, far below the hang
  policy.graceMs = 300;
  StreamingBackend streaming(2, "", policy);
  const auto start = std::chrono::steady_clock::now();
  const auto actual = streaming.execute(jobs);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  expectSameOutcomes(actual, expected, "hang-deadline");
  EXPECT_EQ(streaming.lastStats().deadlineKills, 1u);
  EXPECT_EQ(streaming.lastStats().retries, 1u);
  // The hang is unbounded; only the deadline machinery can have ended it.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(),
            10000);
}

TEST(FaultMatrix, SigtermIgnoringHangIsEscalatedToSigkill) {
  OnceLock lock;
  ScopedEnv fault("PNOC_TEST_FAULT",
                  ("hang@1:ignoreterm=1:once=" + lock.path()).c_str());
  const auto jobs = smallBatch(370);
  const auto expected = inProcessReference(jobs);
  FaultPolicy policy = quickPolicy();
  policy.jobDeadlineMs = 1000;
  policy.graceMs = 200;  // short grace: the SIGKILL escalation must fire
  StreamingBackend streaming(2, "", policy);
  const auto actual = streaming.execute(jobs);
  expectSameOutcomes(actual, expected, "sigterm-ignoring hang");
  EXPECT_EQ(streaming.lastStats().deadlineKills, 1u);
}

// --- loud failure and graceful degradation ---

TEST(FaultMatrix, NonzeroWorkerExitAfterCompleteBatchFailsLoudly) {
  // One worker, exit fault on the LAST job: every result arrives, then the
  // worker exits 41 — protocol corruption that must fail the batch even
  // though no result is missing.
  ScopedEnv fault("PNOC_TEST_FAULT", "exit@2:code=41");
  const auto jobs = smallBatch(380, 3);
  StreamingBackend streaming(1, "", quickPolicy());
  try {
    streaming.execute(jobs);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("exited with status 41"),
              std::string::npos)
        << error.what();
  }
}

TEST(FaultMatrix, ExhaustedRetriesFailSoftIntoAFailureRecord) {
  // crash@1 with NO once-lock: every dispatch of job 1 kills its worker.
  // Under fail_soft the grid must complete around it, with job 1 delivered
  // as a deterministic failure outcome (and through the observer, which is
  // how pnoc_run checkpoints it).
  ScopedEnv fault("PNOC_TEST_FAULT", "crash@1");
  const auto jobs = smallBatch(390);
  const auto expected = inProcessReference(jobs);
  FaultPolicy policy = quickPolicy();
  policy.failSoft = true;
  StreamingBackend streaming(2, "", policy);
  std::vector<std::size_t> observed;
  bool observerSawFailure = false;
  streaming.setOutcomeObserver(
      [&](std::size_t index, const ScenarioOutcome& outcome) {
        observed.push_back(index);
        if (outcome.failed) observerSawFailure = true;
      });
  const auto actual = streaming.execute(jobs);
  ASSERT_EQ(actual.size(), jobs.size());
  EXPECT_TRUE(actual[1].failed);
  EXPECT_NE(actual[1].error.find("retry budget"), std::string::npos)
      << actual[1].error;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    if (i == 1) continue;
    EXPECT_FALSE(actual[i].failed) << i;
    EXPECT_EQ(wire::toJson(actual[i].metrics), wire::toJson(expected[i].metrics))
        << "job " << i << " must be untouched by job 1's failure";
  }
  EXPECT_EQ(streaming.lastStats().failedJobs, 1u);
  EXPECT_EQ(observed.size(), jobs.size());
  EXPECT_TRUE(observerSawFailure);
}

TEST(FaultMatrix, FailSoftFleetCollapseRecordsEveryJobAsFailed) {
  FaultPolicy policy = quickPolicy();
  policy.failSoft = true;
  StreamingBackend streaming(std::vector<HostEntry>{HostEntry{{"false"}, 2, ""}},
                             policy);
  const auto jobs = smallBatch(400, 3);
  const auto outcomes = streaming.execute(jobs);
  ASSERT_EQ(outcomes.size(), jobs.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    EXPECT_TRUE(outcomes[i].failed) << i;
    EXPECT_NE(outcomes[i].error.find("no live workers"), std::string::npos)
        << outcomes[i].error;
  }
  EXPECT_EQ(streaming.lastStats().failedJobs, jobs.size());
}

TEST(FaultMatrix, LaunchFailureDegradesOntoTheSurvivingHost) {
  // One host that can never connect next to one good local host: the fleet
  // must report the failure by name and complete the whole batch on the
  // survivor, byte-identical.
  const auto jobs = smallBatch(410);
  const auto expected = inProcessReference(jobs);
  StreamingBackend streaming(
      std::vector<HostEntry>{HostEntry{{"false"}, 1, ""}, HostEntry{{}, 1, ""}},
      quickPolicy());
  const auto actual = streaming.execute(jobs);
  expectSameOutcomes(actual, expected, "launch failure");
  EXPECT_EQ(streaming.lastStats().launchFailures, 1u);
}

// --- concurrent launch ---

/// A transport whose launch() blocks for a fixed time before producing a
/// real local worker — the stand-in for a slow-connecting ssh host.
class BlockingTransport : public dispatch::WorkerTransport {
 public:
  explicit BlockingTransport(unsigned delayMs, std::string name = "sleepy host")
      : delayMs_(delayMs), name_(std::move(name)) {}
  std::string describe() const override { return name_; }
  dispatch::WorkerConnection launch() const override {
    std::this_thread::sleep_for(std::chrono::milliseconds(delayMs_));
    return dispatch::spawnWorkerProcess(
        {dispatch::selfExecutablePath(), kWorkerFlag}, describe());
  }

 private:
  unsigned delayMs_;
  std::string name_;
};

TEST(ConcurrentLaunch, FleetStartsInMaxNotSumOfConnectTimes) {
  std::vector<std::unique_ptr<dispatch::WorkerTransport>> transports;
  for (int t = 0; t < 4; ++t) {
    transports.push_back(std::make_unique<BlockingTransport>(400));
  }
  const auto start = std::chrono::steady_clock::now();
  auto outcomes = dispatch::launchConcurrently(transports, 5000);
  const auto elapsedMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  ASSERT_EQ(outcomes.size(), 4u);
  for (auto& outcome : outcomes) {
    ASSERT_TRUE(outcome.connection.has_value()) << outcome.error;
    dispatch::terminateWorker(*outcome.connection, 1000);
  }
  // Serial connects would take >= 1600 ms; concurrent ones ~400 ms.  The
  // generous bound keeps the assertion meaningful on a loaded CI box.
  EXPECT_LT(elapsedMs, 1000) << "fleet launch must be concurrent, not serial";
}

TEST(ConcurrentLaunch, PerHostTimeoutIsReportedByNameWhileTheFleetProceeds) {
  std::vector<std::unique_ptr<dispatch::WorkerTransport>> transports;
  transports.push_back(std::make_unique<BlockingTransport>(3000, "glacial host"));
  transports.back()->setConnectTimeoutMs(200);
  transports.push_back(std::make_unique<dispatch::LocalProcessTransport>());
  const auto start = std::chrono::steady_clock::now();
  auto outcomes = dispatch::launchConcurrently(transports, 5000);
  const auto elapsedMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_FALSE(outcomes[0].connection.has_value());
  EXPECT_NE(outcomes[0].error.find("glacial host"), std::string::npos)
      << outcomes[0].error;
  EXPECT_NE(outcomes[0].error.find("did not connect within 200 ms"),
            std::string::npos)
      << outcomes[0].error;
  ASSERT_TRUE(outcomes[1].connection.has_value()) << outcomes[1].error;
  dispatch::terminateWorker(*outcomes[1].connection, 1000);
  EXPECT_LT(elapsedMs, 2500)
      << "the glacial host's own launch() must not gate the fleet";
}

TEST(ConcurrentLaunch, TimedOutHostIsDroppedAndTheBatchCompletesElsewhere) {
  std::vector<std::unique_ptr<dispatch::WorkerTransport>> transports;
  transports.push_back(std::make_unique<BlockingTransport>(3000, "glacial host"));
  transports.back()->setConnectTimeoutMs(200);
  transports.push_back(std::make_unique<dispatch::LocalProcessTransport>());
  const auto jobs = smallBatch(420, 3);
  const auto expected = inProcessReference(jobs);
  dispatch::StreamingWorkerPool pool(std::move(transports), quickPolicy());
  const auto actual = pool.execute(jobs);
  expectSameOutcomes(actual, expected, "timed-out host");
  EXPECT_EQ(pool.stats().launchFailures, 1u);
}

}  // namespace
}  // namespace pnoc::scenario

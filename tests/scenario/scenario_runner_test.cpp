// ScenarioRunner tests: batch results must be independent of thread count
// and identical to direct PhotonicNetwork runs, and the reused-network
// saturation search must equal a fresh-network-per-probe search bit for bit
// (that equivalence is what makes the reset() fast path safe to ship).
#include "scenario/scenario_runner.hpp"

#include <gtest/gtest.h>

#include "network/network.hpp"

namespace pnoc::scenario {
namespace {

ScenarioSpec quickSpec(const std::string& pattern, const std::string& arch,
                       double load, std::uint64_t seed) {
  ScenarioSpec spec;
  spec.set("pattern", pattern);
  spec.set("arch", arch);
  spec.params.offeredLoad = load;
  spec.params.seed = seed;
  spec.params.warmupCycles = 100;
  spec.params.measureCycles = 1000;
  return spec;
}

void expectSameMetrics(const metrics::RunMetrics& a, const metrics::RunMetrics& b) {
  EXPECT_EQ(a.packetsDelivered, b.packetsDelivered);
  EXPECT_EQ(a.bitsDelivered, b.bitsDelivered);
  EXPECT_EQ(a.latencyCyclesSum, b.latencyCyclesSum);
  EXPECT_EQ(a.packetsOffered, b.packetsOffered);
  EXPECT_EQ(a.reservationFailures, b.reservationFailures);
  EXPECT_EQ(a.ledger.total(), b.ledger.total());
}

TEST(ScenarioRunner, BatchRunMatchesDirectRuns) {
  const std::vector<ScenarioSpec> specs = {
      quickSpec("uniform", "firefly", 0.0008, 3),
      quickSpec("skewed3", "dhetpnoc", 0.002, 5),
      quickSpec("tornado", "dhetpnoc", 0.001, 7),
  };
  const auto batch = ScenarioRunner(2).run(specs);
  ASSERT_EQ(batch.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    network::PhotonicNetwork net(specs[i].params);
    expectSameMetrics(batch[i].metrics, net.run());
    EXPECT_GT(batch[i].metrics.packetsDelivered, 0u);
  }
}

TEST(ScenarioRunner, ThreadCountCannotChangeResults) {
  const std::vector<ScenarioSpec> specs = {
      quickSpec("skewed2", "dhetpnoc", 0.001, 1),
      quickSpec("skewed2", "dhetpnoc", 0.001, 2),
      quickSpec("bitcomp", "firefly", 0.001, 3),
      quickSpec("permutation:seed=4", "dhetpnoc", 0.001, 4),
  };
  const auto sequential = ScenarioRunner(1).run(specs);
  const auto parallel = ScenarioRunner(4).run(specs);
  ASSERT_EQ(sequential.size(), parallel.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    expectSameMetrics(sequential[i].metrics, parallel[i].metrics);
  }
}

TEST(ScenarioRunner, ReusedNetworkPeakSearchMatchesFreshNetworks) {
  // findPeakOne probes many loads over ONE network via reset(); the result
  // must be identical to rebuilding a network per probe (the old, slow way).
  ScenarioSpec spec = quickSpec("skewed3", "dhetpnoc", 0.001, 7);
  spec.params.warmupCycles = 200;
  spec.params.measureCycles = 1500;

  const auto reused = ScenarioRunner::findPeakOne(spec);

  const auto options = ScenarioRunner::peakOptions(spec);
  const auto fresh = metrics::findPeak(
      [&](double load) {
        auto params = spec.params;
        params.offeredLoad = load;
        network::PhotonicNetwork net(params);
        return net.run();
      },
      options);

  EXPECT_DOUBLE_EQ(reused.peak.offeredLoad, fresh.peak.offeredLoad);
  expectSameMetrics(reused.peak.metrics, fresh.peak.metrics);
  ASSERT_EQ(reused.sweep.size(), fresh.sweep.size());
  for (std::size_t i = 0; i < reused.sweep.size(); ++i) {
    EXPECT_DOUBLE_EQ(reused.sweep[i].offeredLoad, fresh.sweep[i].offeredLoad);
    expectSameMetrics(reused.sweep[i].metrics, fresh.sweep[i].metrics);
  }
  EXPECT_GT(reused.peak.metrics.packetsDelivered, 0u);
}

TEST(ScenarioRunner, PeakOptionsScaleWithBandwidthSet) {
  ScenarioSpec spec;
  EXPECT_DOUBLE_EQ(ScenarioRunner::peakOptions(spec).startLoad, 0.0002);
  spec.set("set", "3");
  EXPECT_DOUBLE_EQ(ScenarioRunner::peakOptions(spec).startLoad, 0.0008);
}

TEST(ScenarioRecords, RecordsCarryScenarioIdentity) {
  JsonRecorder recorder("test");
  ScenarioSpec spec = quickSpec("uniform", "dhetpnoc", 0.001, 9);
  spec.label = "point-a";
  metrics::RunMetrics metrics;
  metrics.measuredCycles = 10;
  metrics.measuredSeconds = 10 / 2.5e9;
  const std::string line = recordRun(recorder, spec, metrics).serialize();
  EXPECT_NE(line.find("\"label\":\"point-a\""), std::string::npos);
  EXPECT_NE(line.find("\"arch\":\"dhetpnoc\""), std::string::npos);
  EXPECT_NE(line.find("\"pattern\":\"uniform\""), std::string::npos);
  EXPECT_NE(line.find("\"bandwidth_set\":1"), std::string::npos);
  EXPECT_NE(line.find("\"seed\":9"), std::string::npos);
}

}  // namespace
}  // namespace pnoc::scenario

// obs::Registry unit tests: register-once handle identity, kind safety,
// reset semantics, snapshot/diff arithmetic, the log2 histogram's bucket
// boundaries, and both exposition formats.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>

#include "obs/registry.hpp"
#include "scenario/json_util.hpp"

namespace pnoc::obs {
namespace {

TEST(Registry, RegisterOnceReturnsTheSameCell) {
  Registry registry;
  Counter a = registry.counter("hits");
  Counter b = registry.counter("hits");
  a.inc(3);
  b.inc(4);
  EXPECT_EQ(a.value(), 7u);
  EXPECT_EQ(b.value(), 7u);
  EXPECT_EQ(registry.size(), 1u);

  Gauge g1 = registry.gauge("depth");
  Gauge g2 = registry.gauge("depth");
  g1.set(12);
  EXPECT_EQ(g2.value(), 12);

  Histogram h1 = registry.histogram("lat");
  Histogram h2 = registry.histogram("lat");
  h1.observe(5);
  EXPECT_EQ(h2.count(), 1u);
  EXPECT_EQ(registry.size(), 3u);
}

TEST(Registry, KindMismatchThrows) {
  Registry registry;
  registry.counter("x");
  EXPECT_THROW(registry.gauge("x"), std::invalid_argument);
  EXPECT_THROW(registry.histogram("x"), std::invalid_argument);
  registry.gauge("g");
  EXPECT_THROW(registry.counter("g"), std::invalid_argument);
}

TEST(Registry, ResetDropsValuesButKeepsHandles) {
  Registry registry;
  Counter c = registry.counter("events");
  Gauge g = registry.gauge("level");
  Histogram h = registry.histogram("us");
  c.inc(10);
  g.set(-3);
  h.observe(100);

  registry.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(registry.size(), 3u);  // registrations survive

  // Old handles keep working against the zeroed cells.
  c.inc();
  h.observe(7);
  EXPECT_EQ(c.value(), 1u);
  EXPECT_EQ(registry.counter("events").value(), 1u);
  EXPECT_EQ(registry.histogram("us").sum(), 7u);
}

TEST(Registry, SnapshotDiffSubtractsCountersAndKeepsLaterGauges) {
  Registry registry;
  Counter c = registry.counter("ops");
  Gauge g = registry.gauge("depth");
  Histogram h = registry.histogram("ns");

  c.inc(5);
  g.set(10);
  h.observe(8);
  h.observe(8);
  const Snapshot before = registry.snapshot();

  c.inc(7);
  g.set(3);
  h.observe(8);
  const Snapshot after = registry.snapshot();

  const Snapshot interval = after.diff(before);
  EXPECT_EQ(interval.counters.at("ops"), 7u);
  EXPECT_EQ(interval.gauges.at("depth"), 3);  // a gauge is a level, not a flow
  EXPECT_EQ(interval.histograms.at("ns").count, 1u);
  EXPECT_EQ(interval.histograms.at("ns").sum, 8u);

  // diff against a LATER snapshot (e.g. across a reset) clamps at zero
  // instead of wrapping.
  const Snapshot clamped = before.diff(after);
  EXPECT_EQ(clamped.counters.at("ops"), 0u);
  EXPECT_EQ(clamped.histograms.at("ns").count, 0u);
}

TEST(Registry, HistogramBucketBoundaries) {
  // Bucket i holds values of bit width i: bucket 0 = {0}, bucket i >= 1 =
  // [2^(i-1), 2^i - 1].
  EXPECT_EQ(Histogram::bucketIndex(0), 0);
  EXPECT_EQ(Histogram::bucketIndex(1), 1);
  EXPECT_EQ(Histogram::bucketIndex(2), 2);
  EXPECT_EQ(Histogram::bucketIndex(3), 2);
  EXPECT_EQ(Histogram::bucketIndex(4), 3);
  EXPECT_EQ(Histogram::bucketIndex(7), 3);
  EXPECT_EQ(Histogram::bucketIndex(8), 4);
  EXPECT_EQ(Histogram::bucketIndex(std::numeric_limits<std::uint64_t>::max()),
            64);

  EXPECT_EQ(Histogram::bucketUpperBound(0), 0u);
  EXPECT_EQ(Histogram::bucketUpperBound(1), 1u);
  EXPECT_EQ(Histogram::bucketUpperBound(2), 3u);
  EXPECT_EQ(Histogram::bucketUpperBound(3), 7u);
  EXPECT_EQ(Histogram::bucketUpperBound(64),
            std::numeric_limits<std::uint64_t>::max());

  // Every boundary value lands in the bucket whose upper bound covers it.
  for (int i = 1; i < 64; ++i) {
    const std::uint64_t low = std::uint64_t{1} << (i - 1);
    const std::uint64_t high = Histogram::bucketUpperBound(i);
    EXPECT_EQ(Histogram::bucketIndex(low), i);
    EXPECT_EQ(Histogram::bucketIndex(high), i);
  }
}

TEST(Registry, HistogramQuantilesAreBucketUpperBounds) {
  Registry registry;
  Histogram h = registry.histogram("lat");
  // 9 samples in bucket 3 ([4,7]), 1 sample in bucket 7 ([64,127]).
  for (int i = 0; i < 9; ++i) h.observe(5);
  h.observe(100);

  const HistogramSnapshot snap = registry.snapshot().histograms.at("lat");
  EXPECT_EQ(snap.count, 10u);
  EXPECT_EQ(snap.sum, 145u);
  EXPECT_DOUBLE_EQ(snap.mean(), 14.5);
  EXPECT_EQ(snap.quantile(0.5), 7u);     // within the 9-sample bucket
  EXPECT_EQ(snap.quantile(0.9), 7u);     // rank 9 is still the first bucket
  EXPECT_EQ(snap.quantile(0.99), 127u);  // rank 10 is the outlier's bucket
  EXPECT_EQ(snap.quantile(1.0), 127u);

  const HistogramSnapshot empty;
  EXPECT_EQ(empty.quantile(0.5), 0u);
}

TEST(Registry, JsonExpositionParsesAndCarriesEveryMetric) {
  Registry registry;
  registry.counter("reqs \"quoted\"").inc(3);
  registry.gauge("depth").set(-2);
  Histogram h = registry.histogram("us");
  h.observe(0);
  h.observe(9);

  const std::string json = registry.snapshot().toJson();
  const scenario::JsonValue doc = scenario::JsonValue::parse(json);
  EXPECT_EQ(doc.at("counters").at("reqs \"quoted\"").asU64(), 3u);
  EXPECT_EQ(doc.at("gauges").at("depth").raw(), "-2");
  EXPECT_EQ(doc.at("histograms").at("us").at("count").asU64(), 2u);
  EXPECT_EQ(doc.at("histograms").at("us").at("sum").asU64(), 9u);
  EXPECT_EQ(doc.at("histograms").at("us").at("p50").asU64(), 0u);
  EXPECT_EQ(doc.at("histograms").at("us").at("buckets").items().size(), 2u);
}

TEST(Registry, PrometheusExpositionShapesAndSanitizesNames) {
  Registry registry;
  registry.counter("journal appends-total").inc(2);
  registry.gauge("queue_depth").set(4);
  registry.histogram("fsync_us").observe(3);

  const std::string text = registry.snapshot().toPrometheus();
  EXPECT_NE(text.find("# TYPE pnoc_journal_appends_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("pnoc_journal_appends_total 2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE pnoc_queue_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("pnoc_queue_depth 4"), std::string::npos);
  EXPECT_NE(text.find("# TYPE pnoc_fsync_us histogram"), std::string::npos);
  EXPECT_NE(text.find("pnoc_fsync_us_bucket{le=\"3\"} 1"), std::string::npos);
  EXPECT_NE(text.find("pnoc_fsync_us_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("pnoc_fsync_us_sum 3"), std::string::npos);
  EXPECT_NE(text.find("pnoc_fsync_us_count 1"), std::string::npos);
}

}  // namespace
}  // namespace pnoc::obs

// CycleProfiler tests: the profiled step path must be observational only —
// bit-identical simulation results with the profiler on or off — while the
// engine's registry counters survive gating toggles and feed the profiler's
// published gauges.
#include <gtest/gtest.h>

#include <string>

#include "network/network.hpp"
#include "obs/profiler.hpp"
#include "obs/registry.hpp"
#include "scenario/dispatch/checkpoint.hpp"
#include "scenario/execution_backend.hpp"
#include "scenario/scenario_spec.hpp"
#include "sim/engine.hpp"

namespace pnoc {
namespace {

scenario::ScenarioSpec quickSpec(const std::string& pattern) {
  scenario::ScenarioSpec spec;
  spec.set("pattern", pattern);
  spec.set("arch", "firefly");
  spec.params.offeredLoad = 0.002;
  spec.params.seed = 7;
  spec.params.warmupCycles = 200;
  spec.params.measureCycles = 800;
  return spec;
}

TEST(CycleProfiler, ProfiledRunsAreByteIdenticalToUnprofiled) {
  for (const std::string pattern : {"uniform", "skewed3"}) {
    scenario::ScenarioSpec plain = quickSpec(pattern);
    scenario::ScenarioSpec profiled = quickSpec(pattern);
    profiled.params.profile = true;

    const scenario::ScenarioOutcome plainOutcome =
        scenario::executeJob({scenario::ScenarioJob::Op::kRun, plain});
    const scenario::ScenarioOutcome profiledOutcome =
        scenario::executeJob({scenario::ScenarioJob::Op::kRun, profiled});

    // The serialized record is the deterministic wire/BENCH form — if the
    // profiled step path perturbed anything (ordering, wakes, RNG), the
    // bytes would differ.  The one intentional difference is spec_key, which
    // hashes the whole spec including the profile flag; blank it out.
    const auto stripSpecKey = [](std::string record) {
      const std::string tag = "\"spec_key\":\"";
      const std::size_t at = record.find(tag);
      EXPECT_NE(at, std::string::npos);
      if (at != std::string::npos) record.erase(at + tag.size(), 16);
      return record;
    };
    const std::string plainRecord = stripSpecKey(
        scenario::dispatch::serializedOutcomeRecord(plainOutcome, 0));
    const std::string profiledRecord = stripSpecKey(
        scenario::dispatch::serializedOutcomeRecord(profiledOutcome, 0));
    EXPECT_EQ(plainRecord, profiledRecord) << "pattern=" << pattern;
  }
}

TEST(CycleProfiler, NetworkAttachesProfilerAndAttributesEveryStep) {
  scenario::ScenarioSpec spec = quickSpec("uniform");
  spec.set("arch", "dhetpnoc");  // the arch with a policy ring component
  spec.params.profile = true;
  network::PhotonicNetwork net(spec.params);
  ASSERT_NE(net.profiler(), nullptr);

  net.step(500);
  const obs::CycleProfiler::Snapshot snap = net.profiler()->snapshot();
  EXPECT_EQ(snap.cycles, 500u);

  // Every component step lands in exactly one kind bucket per phase; the
  // engine counts a component once per cycle while the profiler attributes
  // evaluate and advance separately, hence the factor of two.
  std::uint64_t kindSteps = 0;
  for (std::size_t k = 0; k < obs::kComponentKindCount; ++k) {
    kindSteps += snap.kindSteps[k];
  }
  EXPECT_EQ(kindSteps, 2 * net.engine().stats().componentSteps);
  EXPECT_GT(snap.kindSteps[static_cast<std::size_t>(
                obs::ComponentKind::kCore)],
            0u);
  EXPECT_GT(snap.kindSteps[static_cast<std::size_t>(
                obs::ComponentKind::kPolicy)],
            0u);

  // Publishing bridges the profiler's cells into a registry as gauges.
  obs::Registry registry;
  net.profiler()->publishTo(registry);
  EXPECT_EQ(registry.gauge("profile_cycles").value(), 500);
  const obs::Snapshot published = registry.snapshot();
  EXPECT_EQ(published.gauges.count("profile_evaluate_ns"), 1u);
  EXPECT_EQ(published.gauges.count("profile_kind_core_steps"), 1u);
}

TEST(CycleProfiler, UnprofiledNetworkHasNoProfilerAttached) {
  scenario::ScenarioSpec spec = quickSpec("uniform");
  network::PhotonicNetwork net(spec.params);
  EXPECT_EQ(net.profiler(), nullptr);
  EXPECT_EQ(net.engine().profiler(), nullptr);
}

TEST(EngineMetrics, CountersSurviveGatingToggles) {
  scenario::ScenarioSpec spec = quickSpec("uniform");
  network::PhotonicNetwork net(spec.params);
  sim::Engine& engine = net.engine();

  net.step(100);
  const sim::EngineStats before = engine.stats();
  EXPECT_EQ(before.cycles, 100u);
  EXPECT_GT(before.componentSteps, 0u);

  // Toggling gating re-activates components but must not reset counters —
  // they live in the registry, not in gating state.
  engine.setActivityGating(false);
  net.step(50);
  engine.setActivityGating(true);
  net.step(50);
  const sim::EngineStats after = engine.stats();
  EXPECT_EQ(after.cycles, 200u);
  EXPECT_GE(after.componentSteps, before.componentSteps);

  // The stats struct is a view over the registry: same numbers.
  const obs::Snapshot snap = engine.metrics().snapshot();
  EXPECT_EQ(snap.counters.at("engine_cycles_total"), after.cycles);
  EXPECT_EQ(snap.counters.at("engine_component_steps_total"),
            after.componentSteps);
  EXPECT_EQ(snap.counters.at("engine_wakes_total"), after.wakes);

  // reset() zeroes the registry cells; existing handles count from zero.
  net.reset();
  EXPECT_EQ(engine.stats().cycles, 0u);
  EXPECT_EQ(engine.metrics().snapshot().counters.at("engine_cycles_total"), 0u);
}

}  // namespace
}  // namespace pnoc

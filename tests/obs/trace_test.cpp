// TraceWriter tests: the emitted file must be complete, well-formed Chrome
// Trace Event JSON with matched span begin/end pairs — the same contract
// scripts/validate_trace.py enforces on CI traces — and the global sink must
// be a safe no-op when tracing is off.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "obs/trace.hpp"
#include "scenario/json_util.hpp"

namespace pnoc::obs {
namespace {

std::string tempTracePath(const std::string& tag) {
  return ::testing::TempDir() + "trace_" + tag + "_" +
         std::to_string(::getpid()) + ".json";
}

std::string readAll(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

TEST(TraceWriter, EmitsWellFormedMatchedSpans) {
  const std::string path = tempTracePath("spans");
  {
    TraceWriter writer(path, "unit-test");
    ASSERT_TRUE(writer.ok());
    writer.begin("outer", "test");
    writer.begin("inner", "test");
    writer.instant("ping", "test");
    writer.end();
    writer.end();
    writer.asyncBegin("queue-wait", "queue", 42);
    writer.asyncEnd("queue-wait", "queue", 42);
    writer.counter("depth", 3);
  }  // destructor closes: the file must be complete JSON

  const scenario::JsonValue doc = scenario::JsonValue::parse(readAll(path));
  const auto& events = doc.at("traceEvents").items();
  ASSERT_FALSE(events.empty());

  int begins = 0, ends = 0, instants = 0, counters = 0, meta = 0;
  std::map<std::string, int> asyncOpen;
  for (const scenario::JsonValue& event : events) {
    const std::string ph = event.at("ph").asString();
    if (ph == "B") ++begins;
    if (ph == "E") ++ends;
    if (ph == "i") ++instants;
    if (ph == "C") ++counters;
    if (ph == "M") ++meta;
    if (ph == "b" || ph == "e") {
      const std::string key = event.at("cat").asString() + "/" +
                              event.at("name").asString() + "/" +
                              event.at("id").asString();
      asyncOpen[key] += ph == "b" ? 1 : -1;
    }
  }
  EXPECT_EQ(begins, 2);
  EXPECT_EQ(ends, 2);
  EXPECT_EQ(instants, 1);
  EXPECT_EQ(counters, 1);
  EXPECT_GE(meta, 1);  // process_name metadata
  for (const auto& [key, open] : asyncOpen) {
    EXPECT_EQ(open, 0) << "unmatched async span " << key;
  }
  std::remove(path.c_str());
}

TEST(TraceWriter, CloseIsIdempotentAndDropsLaterEvents) {
  const std::string path = tempTracePath("close");
  TraceWriter writer(path);
  writer.instant("before", "test");
  writer.close();
  writer.instant("after", "test");  // dropped, not appended
  writer.close();                   // idempotent

  const scenario::JsonValue doc = scenario::JsonValue::parse(readAll(path));
  bool sawBefore = false, sawAfter = false;
  for (const scenario::JsonValue& event : doc.at("traceEvents").items()) {
    if (const scenario::JsonValue* name = event.find("name")) {
      if (name->asString() == "before") sawBefore = true;
      if (name->asString() == "after") sawAfter = true;
    }
  }
  EXPECT_TRUE(sawBefore);
  EXPECT_FALSE(sawAfter);
  std::remove(path.c_str());
}

TEST(TraceWriter, UnopenableFileReportsNotOk) {
  TraceWriter writer("/nonexistent-dir-for-pnoc-test/trace.json");
  EXPECT_FALSE(writer.ok());
  writer.begin("x", "test");  // must not crash
  writer.end();
  writer.close();
}

TEST(TraceGlobal, OffByDefaultAndScopedSpanIsANoop) {
  ASSERT_EQ(trace(), nullptr);
  { const ScopedSpan span("noop", "test"); }  // no writer: nothing happens

  const std::string path = tempTracePath("global");
  {
    TraceWriter writer(path);
    setTrace(&writer);
    EXPECT_EQ(trace(), &writer);
    { const ScopedSpan span("scoped", "test"); }
    setTrace(nullptr);
  }
  EXPECT_EQ(trace(), nullptr);

  const scenario::JsonValue doc = scenario::JsonValue::parse(readAll(path));
  int spanEvents = 0;
  for (const scenario::JsonValue& event : doc.at("traceEvents").items()) {
    const std::string ph = event.at("ph").asString();
    if (ph == "B" || ph == "E") ++spanEvents;
  }
  EXPECT_EQ(spanEvents, 2);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pnoc::obs

// ServeDaemon integration tests: an in-process daemon on a real Unix-domain
// socket, real re-exec'd workers (this test binary handles --pnoc-worker),
// real clients.
//
// The acceptance bar is the subsystem's: BENCH files produced through the
// daemon — across concurrent clients, worker faults, pipelining, and a full
// daemon stop/restart — are byte-identical to what in-process execution of
// the same grid records.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "scenario/dispatch/checkpoint.hpp"
#include "scenario/execution_backend.hpp"
#include "service/client.hpp"
#include "service/server.hpp"

namespace pnoc::service {
namespace {

/// Scoped env override (restored on destruction).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    hadOld_ = old != nullptr;
    if (hadOld_) old_ = old;
    if (value == nullptr) {
      ::unsetenv(name);
    } else {
      ::setenv(name, value, 1);
    }
  }
  ~ScopedEnv() {
    if (hadOld_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  bool hadOld_ = false;
  std::string old_;
};

std::string readAll(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

scenario::ScenarioSpec quickSpec(const std::string& pattern, double load,
                                 std::uint64_t seed) {
  scenario::ScenarioSpec spec;
  spec.set("pattern", pattern);
  spec.set("arch", "firefly");
  spec.params.offeredLoad = load;
  spec.params.seed = seed;
  spec.params.warmupCycles = 100;
  spec.params.measureCycles = 400;
  return spec;
}

std::vector<scenario::ScenarioSpec> quickGrid(std::size_t units,
                                              std::uint64_t seedBase) {
  std::vector<scenario::ScenarioSpec> grid;
  for (std::size_t u = 0; u < units; ++u) {
    grid.push_back(quickSpec(u % 2 == 0 ? "uniform" : "skewed3",
                             0.001 + 0.001 * static_cast<double>(u % 3),
                             seedBase + u));
  }
  return grid;
}

/// What an uninterrupted in-process run of `grid` records, written as a
/// BENCH file — the byte-identity reference for every daemon test.
std::string expectedBenchText(const std::vector<scenario::ScenarioSpec>& grid,
                              const std::string& dir, const std::string& bench) {
  std::vector<std::string> records;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const scenario::ScenarioOutcome outcome =
        scenario::executeJob({scenario::ScenarioJob::Op::kRun, grid[i]});
    records.push_back(scenario::dispatch::serializedOutcomeRecord(outcome, i));
  }
  const std::string path =
      scenario::dispatch::writeBenchFile(dir, bench, records);
  EXPECT_FALSE(path.empty());
  return readAll(path);
}

std::string submitLine(const std::vector<scenario::ScenarioSpec>& grid,
                       const std::string& dir, const std::string& bench,
                       const std::string& client = "", int priority = 0) {
  std::string line = "{\"op\":\"submit\"";
  if (!client.empty()) line += ",\"client\":\"" + client + "\"";
  line += ",\"priority\":" + std::to_string(priority);
  line += ",\"bench\":\"" + bench + "\",\"dir\":\"" + dir + "\",\"specs\":[";
  for (std::size_t s = 0; s < grid.size(); ++s) {
    if (s != 0) line += ",";
    line += grid[s].toJson();
  }
  line += "]}";
  return line;
}

/// Watches `job` to its terminal event; returns the terminal state.
std::string watchToTerminal(ServeClient& client, std::uint64_t job) {
  client.sendLine("{\"op\":\"watch\",\"job\":" + std::to_string(job) + "}");
  while (true) {
    const scenario::JsonValue event =
        scenario::JsonValue::parse(client.readLine());
    if (const scenario::JsonValue* ok = event.find("ok");
        ok != nullptr && ok->asU64() == 0) {
      return "error: " + event.at("error").asString();
    }
    if (event.at("event").asString() == "job") {
      return event.at("state").asString();
    }
  }
}

/// An in-process daemon on its own temp directory + background run() thread.
class DaemonHarness {
 public:
  DaemonHarness() {
    static int counter = 0;
    dir_ = ::testing::TempDir() + "pnoc_serve_" + std::to_string(::getpid()) +
           "_" + std::to_string(counter++);
    ::mkdir(dir_.c_str(), 0755);
    options.socketPath = dir_ + "/sock";
    options.journalPath = dir_ + "/journal";
    options.shards = 1;
    options.policy.connectTimeoutMs = 10000;
  }
  ~DaemonHarness() { stop(); }

  const std::string& dir() const { return dir_; }

  void start() {
    daemon = std::make_unique<ServeDaemon>(options);
    daemon->start();
    thread_ = std::thread([this] { exitCode = daemon->run(); });
  }

  void stop() {
    if (!thread_.joinable()) return;
    daemon->requestStop();
    thread_.join();
    daemon.reset();
  }

  ServeOptions options;
  std::unique_ptr<ServeDaemon> daemon;
  int exitCode = -1;

 private:
  std::string dir_;
  std::thread thread_;
};

TEST(ServeDaemon, SubmitWatchProducesOneShotIdenticalBytes) {
  DaemonHarness harness;
  harness.options.shards = 2;
  harness.start();

  const std::vector<scenario::ScenarioSpec> grid = quickGrid(3, 100);
  ServeClient client(harness.options.socketPath);
  const scenario::JsonValue ack =
      client.request(submitLine(grid, harness.dir(), "solo"));
  EXPECT_EQ(ack.at("units").asU64(), 3u);
  const std::uint64_t job = ack.at("job").asU64();
  EXPECT_EQ(watchToTerminal(client, job), "done");

  const std::string served = readAll(harness.dir() + "/BENCH_solo.json");
  const std::string expectedDir = harness.dir() + "/expected";
  ::mkdir(expectedDir.c_str(), 0755);
  EXPECT_EQ(served, expectedBenchText(grid, expectedDir, "solo"));
  harness.stop();
  EXPECT_EQ(harness.exitCode, 0);
}

TEST(ServeDaemon, TwoConcurrentClientsShareTheFleetByteIdentically) {
  DaemonHarness harness;
  harness.options.shards = 2;
  harness.start();

  const std::vector<scenario::ScenarioSpec> gridA = quickGrid(4, 200);
  const std::vector<scenario::ScenarioSpec> gridB = quickGrid(3, 300);
  std::string stateA, stateB;
  std::thread clientA([&] {
    ServeClient client(harness.options.socketPath);
    const scenario::JsonValue ack =
        client.request(submitLine(gridA, harness.dir(), "alice", "alice", 1));
    stateA = watchToTerminal(client, ack.at("job").asU64());
  });
  std::thread clientB([&] {
    ServeClient client(harness.options.socketPath);
    const scenario::JsonValue ack =
        client.request(submitLine(gridB, harness.dir(), "bob", "bob", 0));
    stateB = watchToTerminal(client, ack.at("job").asU64());
  });
  clientA.join();
  clientB.join();
  EXPECT_EQ(stateA, "done");
  EXPECT_EQ(stateB, "done");

  // Both jobs interleaved across ONE shared fleet; each output is still
  // byte-identical to its own uninterrupted one-shot run.
  const std::string expectedDir = harness.dir() + "/expected";
  ::mkdir(expectedDir.c_str(), 0755);
  EXPECT_EQ(readAll(harness.dir() + "/BENCH_alice.json"),
            expectedBenchText(gridA, expectedDir, "alice"));
  EXPECT_EQ(readAll(harness.dir() + "/BENCH_bob.json"),
            expectedBenchText(gridB, expectedDir, "bob"));
}

TEST(ServeDaemon, RestartResumesJournaledJobsByteIdentically) {
  DaemonHarness harness;
  const std::vector<scenario::ScenarioSpec> grid = quickGrid(3, 400);
  std::uint64_t job = 0;
  {
    // Daemon A's only worker cannot launch, so the accepted job stays
    // queued; stopping the daemon leaves it in the fsync'd journal.
    harness.options.workerExecutable = "/nonexistent/pnoc-worker";
    harness.options.policy.respawns = 0;
    harness.start();
    ServeClient client(harness.options.socketPath);
    const scenario::JsonValue ack =
        client.request(submitLine(grid, harness.dir(), "resumed"));
    job = ack.at("job").asU64();
    harness.stop();
    EXPECT_EQ(harness.exitCode, 0);
  }
  // Daemon B: same journal, a working fleet.  The job resumes under its
  // original id and completes with one-shot-identical bytes.
  harness.options.workerExecutable = "";
  harness.start();
  ServeClient client(harness.options.socketPath);
  EXPECT_EQ(watchToTerminal(client, job), "done");
  const std::string expectedDir = harness.dir() + "/expected";
  ::mkdir(expectedDir.c_str(), 0755);
  EXPECT_EQ(readAll(harness.dir() + "/BENCH_resumed.json"),
            expectedBenchText(grid, expectedDir, "resumed"));
}

TEST(ServeDaemon, RestartReusesCheckpointedUnitsWithoutRecomputing) {
  DaemonHarness harness;
  const std::vector<scenario::ScenarioSpec> grid = quickGrid(3, 500);
  std::uint64_t job = 0;
  {
    harness.options.workerExecutable = "/nonexistent/pnoc-worker";
    harness.options.policy.respawns = 0;
    harness.start();
    ServeClient client(harness.options.socketPath);
    job = client.request(submitLine(grid, harness.dir(), "partial"))
              .at("job")
              .asU64();
    harness.stop();
  }
  // Simulate progress made before the "crash": unit 1's record is already
  // in the job's BENCH checkpoint.
  const scenario::ScenarioOutcome one =
      scenario::executeJob({scenario::ScenarioJob::Op::kRun, grid[1]});
  scenario::dispatch::writeBenchFile(
      harness.dir(), "partial",
      {scenario::dispatch::serializedOutcomeRecord(one, 1)});

  harness.options.workerExecutable = "";  // daemon B gets a working fleet
  harness.start();
  ServeClient client(harness.options.socketPath);
  EXPECT_EQ(watchToTerminal(client, job), "done");

  // Only the two missing units were dispatched; the checkpointed one rode
  // through verbatim.
  client.sendLine("{\"op\":\"status\"}");
  const scenario::JsonValue status = scenario::JsonValue::parse(client.readLine());
  std::uint64_t completed = 0;
  for (const scenario::JsonValue& worker : status.at("workers").items()) {
    completed += worker.at("completed").asU64();
  }
  EXPECT_EQ(completed, 2u);

  const std::string expectedDir = harness.dir() + "/expected";
  ::mkdir(expectedDir.c_str(), 0755);
  EXPECT_EQ(readAll(harness.dir() + "/BENCH_partial.json"),
            expectedBenchText(grid, expectedDir, "partial"));
}

TEST(ServeDaemon, CancelDrainAndDrainingRejectsSubmits) {
  DaemonHarness harness;
  // A fleet that never becomes ready: units stay queued, cancellation and
  // drain semantics are deterministic.
  harness.options.workerExecutable = "/nonexistent/pnoc-worker";
  harness.options.policy.respawns = 0;
  harness.start();

  ServeClient client(harness.options.socketPath);
  const std::uint64_t job =
      client.request(submitLine(quickGrid(2, 600), harness.dir(), "doomed"))
          .at("job")
          .asU64();
  const scenario::JsonValue canceled =
      client.request("{\"op\":\"cancel\",\"job\":" + std::to_string(job) + "}");
  EXPECT_EQ(canceled.at("canceled").asU64(), 1u);
  // Canceling a terminal job is an error, not a second cancel.
  EXPECT_THROW(
      client.request("{\"op\":\"cancel\",\"job\":" + std::to_string(job) + "}"),
      std::runtime_error);
  // A watch on the canceled job reports the terminal state immediately.
  EXPECT_EQ(watchToTerminal(client, job), "canceled");

  // Queue is empty now, so drain answers; submits are refused from then on.
  EXPECT_EQ(client.request("{\"op\":\"drain\"}").at("drained").asU64(), 1u);
  try {
    client.request(submitLine(quickGrid(1, 601), harness.dir(), "late"));
    FAIL() << "submit while draining must be rejected";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("draining"), std::string::npos);
  }
}

TEST(ServeDaemon, PipelineKeepsMultipleUnitsInFlightPerWorker) {
  // Slow every worker reply by 40 ms: with pipeline depth 2 the dealer keeps
  // a second unit queued on the worker while the first executes.
  ScopedEnv fault("PNOC_TEST_FAULT", "slow@*:ms=40");
  DaemonHarness harness;
  harness.options.shards = 1;
  harness.options.policy.pipeline = 2;
  harness.start();

  const std::vector<scenario::ScenarioSpec> grid = quickGrid(4, 700);
  ServeClient client(harness.options.socketPath);
  const std::uint64_t job =
      client.request(submitLine(grid, harness.dir(), "piped")).at("job").asU64();
  EXPECT_EQ(watchToTerminal(client, job), "done");

  // The status endpoint's high-water counters prove >1 unit rode one worker
  // at once — and the bytes still match a sequential one-shot run.
  client.sendLine("{\"op\":\"status\"}");
  const scenario::JsonValue status = scenario::JsonValue::parse(client.readLine());
  EXPECT_GE(status.at("stats").at("max_in_flight").asU64(), 2u);
  EXPECT_EQ(status.at("queue_depth").asU64(), 0u);
  const std::string expectedDir = harness.dir() + "/expected";
  ::mkdir(expectedDir.c_str(), 0755);
  EXPECT_EQ(readAll(harness.dir() + "/BENCH_piped.json"),
            expectedBenchText(grid, expectedDir, "piped"));
}

TEST(ServeDaemon, WorkerCrashHealsAndBytesStayIdentical) {
  // The worker crashes on its 2nd job once; the fleet respawns the slot and
  // retries the unit — the client never notices, the bytes never change.
  const std::string lock = ::testing::TempDir() + "pnoc_serve_crash_" +
                           std::to_string(::getpid()) + ".lock";
  std::remove(lock.c_str());
  ScopedEnv fault("PNOC_TEST_FAULT", ("crash@2:once=" + lock).c_str());
  DaemonHarness harness;
  harness.options.shards = 1;
  harness.options.policy.retries = 1;
  harness.options.policy.respawns = 1;
  harness.options.policy.backoffBaseMs = 1;
  harness.start();

  const std::vector<scenario::ScenarioSpec> grid = quickGrid(3, 800);
  ServeClient client(harness.options.socketPath);
  const std::uint64_t job =
      client.request(submitLine(grid, harness.dir(), "crashy")).at("job").asU64();
  EXPECT_EQ(watchToTerminal(client, job), "done");

  client.sendLine("{\"op\":\"status\"}");
  const scenario::JsonValue status = scenario::JsonValue::parse(client.readLine());
  EXPECT_GE(status.at("stats").at("respawns").asU64(), 1u);
  EXPECT_GE(status.at("stats").at("retries").asU64(), 1u);

  const std::string expectedDir = harness.dir() + "/expected";
  ::mkdir(expectedDir.c_str(), 0755);
  EXPECT_EQ(readAll(harness.dir() + "/BENCH_crashy.json"),
            expectedBenchText(grid, expectedDir, "crashy"));
  std::remove(lock.c_str());
}

TEST(ServeDaemon, FleetAddRescuesAFleetThatNeverLaunched) {
  DaemonHarness harness;
  harness.options.workerExecutable = "/nonexistent/pnoc-worker";
  harness.options.policy.respawns = 0;
  harness.start();

  const std::vector<scenario::ScenarioSpec> grid = quickGrid(2, 900);
  ServeClient client(harness.options.socketPath);
  const std::uint64_t job =
      client.request(submitLine(grid, harness.dir(), "rescued")).at("job").asU64();

  // Elasticity: a working worker joins at runtime (executable "" = this
  // binary) and the stranded job completes.
  const scenario::JsonValue added = client.request(
      "{\"op\":\"fleet-add\",\"workers\":1,\"executable\":\"\"}");
  EXPECT_GE(added.at("workers").asU64(), 1u);
  EXPECT_EQ(watchToTerminal(client, job), "done");

  // And leaves at runtime: removing the dead slot 0 shrinks the fleet.
  const scenario::JsonValue removed =
      client.request("{\"op\":\"fleet-remove\",\"worker\":0}");
  EXPECT_EQ(removed.at("worker").asU64(), 0u);
  EXPECT_THROW(client.request("{\"op\":\"fleet-remove\",\"worker\":0}"),
               std::runtime_error);
  EXPECT_THROW(client.request("{\"op\":\"fleet-remove\",\"worker\":99}"),
               std::runtime_error);
}

TEST(ServeDaemon, MetricsVerbExposesTheSameCellsStatusSummarizes) {
  DaemonHarness harness;
  harness.start();
  ServeClient client(harness.options.socketPath);

  const std::vector<scenario::ScenarioSpec> grid = quickGrid(2, 900);
  const scenario::JsonValue ack =
      client.request(submitLine(grid, harness.dir(), "obs"));
  const std::uint64_t job = ack.at("job").asU64();
  EXPECT_EQ(watchToTerminal(client, job), "done");

  const scenario::JsonValue status = client.request("{\"op\":\"status\"}");
  EXPECT_GT(status.at("events_total").asU64(), 0u);
  EXPECT_GE(status.at("journal").at("appends").asU64(), 2u);
  ASSERT_NE(status.find("uptime_s"), nullptr);
  ASSERT_NE(status.at("journal").find("fsync_p50_us"), nullptr);

  // The metrics verb dumps the same registry cells the status summary reads.
  const scenario::JsonValue reply = client.request("{\"op\":\"metrics\"}");
  const scenario::JsonValue& metrics = reply.at("metrics");
  const scenario::JsonValue& counters = metrics.at("counters");
  EXPECT_EQ(counters.at("fleet_units_completed_total").asU64(), grid.size());
  EXPECT_EQ(counters.at("fleet_retries_total").asU64(),
            status.at("stats").at("retries").asU64());
  EXPECT_EQ(counters.at("journal_appends_total").asU64(),
            status.at("journal").at("appends").asU64());
  EXPECT_GT(metrics.at("histograms").at("journal_fsync_us").at("count").asU64(),
            0u);
  EXPECT_GE(metrics.at("gauges").at("serve_workers_live").asU64(), 1u);

  // Prometheus text exposition rides the same snapshot.
  const scenario::JsonValue text =
      client.request("{\"op\":\"metrics\",\"format\":\"text\"}");
  const std::string body = text.at("body").asString();
  EXPECT_NE(body.find("# TYPE pnoc_fleet_units_completed_total counter"),
            std::string::npos);
  EXPECT_NE(body.find("pnoc_fleet_units_completed_total " +
                      std::to_string(grid.size())),
            std::string::npos);
  EXPECT_NE(body.find("pnoc_journal_fsync_us_count"), std::string::npos);

  EXPECT_THROW(client.request("{\"op\":\"metrics\",\"format\":\"xml\"}"),
               std::runtime_error);
}

TEST(ServeDaemon, ProtocolErrorsAreNamedAndSuggested) {
  DaemonHarness harness;
  harness.start();
  ServeClient client(harness.options.socketPath);

  // A typo'd op gets a did-you-mean, not a hang or a silent drop.
  try {
    client.request("{\"op\":\"sumbit\"}");
    FAIL() << "unknown op must be rejected";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("submit"), std::string::npos);
  }
  EXPECT_THROW(client.request("this is not json"), std::runtime_error);
  EXPECT_THROW(client.request("{\"op\":\"watch\",\"job\":42}"),
               std::runtime_error);
  // Submit validation: empty specs, bad mode, duplicate output path.
  EXPECT_THROW(client.request("{\"op\":\"submit\",\"specs\":[]}"),
               std::runtime_error);
  const std::vector<scenario::ScenarioSpec> grid = quickGrid(1, 950);
  EXPECT_THROW(
      client.request(
          "{\"op\":\"submit\",\"mode\":\"sideways\",\"specs\":[" +
          grid[0].toJson() + "]}"),
      std::runtime_error);
}

}  // namespace
}  // namespace pnoc::service

// JobQueue scheduling-policy tests: priority order, per-client fairness,
// anti-starvation aging, cancellation and terminal-state accounting — pure
// state machine, no sockets or processes, so every policy claim in the
// header is pinned deterministically here.
#include <gtest/gtest.h>

#include <stdexcept>

#include "service/job_queue.hpp"

namespace pnoc::service {
namespace {

GridJob makeJob(const std::string& client, std::uint64_t priority,
                std::size_t units) {
  GridJob job;
  job.client = client;
  job.priority = priority;
  job.benchName = "t";
  job.outDir = ".";
  for (std::size_t u = 0; u < units; ++u) {
    scenario::ScenarioSpec spec;
    spec.params.seed = u + 1;
    job.grid.push_back(spec);
  }
  return job;
}

TEST(JobQueue, SubmitAssignsSequentialIdsAndValidates) {
  JobQueue queue;
  EXPECT_EQ(queue.submit(makeJob("a", 0, 2)), 1u);
  EXPECT_EQ(queue.submit(makeJob("a", 0, 1)), 2u);
  EXPECT_THROW(queue.submit(makeJob("a", 0, 0)), std::invalid_argument);

  // Journal replay passes ids through; fresh ids continue above them.
  GridJob replayed = makeJob("b", 0, 1);
  replayed.id = 9;
  EXPECT_EQ(queue.submit(std::move(replayed)), 9u);
  EXPECT_EQ(queue.submit(makeJob("b", 0, 1)), 10u);

  GridJob duplicate = makeJob("b", 0, 1);
  duplicate.id = 9;
  EXPECT_THROW(queue.submit(std::move(duplicate)), std::invalid_argument);
}

TEST(JobQueue, HigherPriorityDispatchesFirst) {
  JobQueue queue;
  const std::uint64_t low = queue.submit(makeJob("a", 0, 2));
  const std::uint64_t high = queue.submit(makeJob("a", 5, 2));
  // Dispatches 1..3 favor priority; units come in grid order.
  auto unit = queue.nextUnit();
  ASSERT_TRUE(unit.has_value());
  EXPECT_EQ(unit->job, high);
  EXPECT_EQ(unit->unit, 0u);
  unit = queue.nextUnit();
  ASSERT_TRUE(unit.has_value());
  EXPECT_EQ(unit->job, high);
  EXPECT_EQ(unit->unit, 1u);
  unit = queue.nextUnit();
  ASSERT_TRUE(unit.has_value());
  EXPECT_EQ(unit->job, low);
}

TEST(JobQueue, ClientsTakeTurnsWithinATier) {
  JobQueue queue;
  const std::uint64_t hog1 = queue.submit(makeJob("hog", 0, 4));
  queue.submit(makeJob("hog", 0, 4));
  const std::uint64_t guest = queue.submit(makeJob("guest", 0, 2));
  // Neither client has been served: the tie keeps the older job.  From then
  // on the least-recently-served client alternates — the hog's backlog
  // cannot freeze the guest out.
  EXPECT_EQ(queue.nextUnit()->job, hog1);
  EXPECT_EQ(queue.nextUnit()->job, guest);
  EXPECT_EQ(queue.nextUnit()->job, hog1);
  // 4th dispatch is the aging slot; oldest job (hog1) happens to win it.
  EXPECT_EQ(queue.nextUnit()->job, hog1);
  EXPECT_EQ(queue.nextUnit()->job, guest);
  // Guest exhausted: the hog's jobs proceed oldest-first.
  EXPECT_EQ(queue.nextUnit()->job, hog1);
}

TEST(JobQueue, EveryFourthDispatchServesTheOldestJob) {
  JobQueue queue;
  const std::uint64_t background = queue.submit(makeJob("bg", 0, 4));
  const std::uint64_t urgent = queue.submit(makeJob("fg", 9, 16));
  EXPECT_EQ(queue.nextUnit()->job, urgent);
  EXPECT_EQ(queue.nextUnit()->job, urgent);
  EXPECT_EQ(queue.nextUnit()->job, urgent);
  // Aging: the 4th dispatch ignores priority — the background job advances
  // even under a saturating high-priority stream.
  EXPECT_EQ(queue.nextUnit()->job, background);
  EXPECT_EQ(queue.nextUnit()->job, urgent);
}

TEST(JobQueue, UnitCompletionDrivesTerminalStates) {
  JobQueue queue;
  const std::uint64_t id = queue.submit(makeJob("a", 0, 2));
  const auto first = queue.nextUnit();
  const auto second = queue.nextUnit();
  ASSERT_TRUE(first && second);
  EXPECT_EQ(queue.pendingUnits(), 0u);
  EXPECT_EQ(queue.dispatchedUnits(), 2u);

  EXPECT_FALSE(queue.unitDone(*first, "r0", false));
  EXPECT_EQ(queue.find(id)->state, JobState::kRunning);
  EXPECT_TRUE(queue.unitDone(*second, "r1", false));
  EXPECT_EQ(queue.find(id)->state, JobState::kDone);
  EXPECT_EQ(queue.find(id)->records[0], "r0");
  EXPECT_EQ(queue.find(id)->records[1], "r1");
  EXPECT_TRUE(queue.drained());

  // Any failed unit makes the whole job terminal-failed.
  const std::uint64_t flaky = queue.submit(makeJob("a", 0, 1));
  EXPECT_TRUE(queue.unitDone(*queue.nextUnit(), "failure record", true));
  EXPECT_EQ(queue.find(flaky)->state, JobState::kFailed);
  EXPECT_EQ(queue.find(flaky)->failedUnits(), 1u);
}

TEST(JobQueue, CancelGoesTerminalNowAndDiscardsInFlightResults) {
  JobQueue queue;
  const std::uint64_t id = queue.submit(makeJob("a", 0, 3));
  const auto inFlight = queue.nextUnit();
  ASSERT_TRUE(inFlight.has_value());

  EXPECT_TRUE(queue.cancel(id));
  EXPECT_EQ(queue.find(id)->state, JobState::kCanceled);
  EXPECT_TRUE(queue.find(id)->terminal());
  EXPECT_TRUE(queue.drained());  // canceled units no longer count

  // The in-flight unit's late result is discarded, not recorded.
  EXPECT_FALSE(queue.unitDone(*inFlight, "late", false));
  EXPECT_EQ(queue.find(id)->records[inFlight->unit], "");

  EXPECT_FALSE(queue.cancel(id));   // already terminal
  EXPECT_FALSE(queue.cancel(99));   // unknown
  EXPECT_FALSE(queue.nextUnit().has_value());
}

TEST(JobQueue, RequeueReturnsADispatchedUnitToPending) {
  JobQueue queue;
  queue.submit(makeJob("a", 0, 1));
  const auto unit = queue.nextUnit();
  ASSERT_TRUE(unit.has_value());
  EXPECT_EQ(queue.pendingUnits(), 0u);
  queue.requeueUnit(*unit);
  EXPECT_EQ(queue.pendingUnits(), 1u);
  // The same unit dispatches again.
  const auto again = queue.nextUnit();
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->unit, unit->unit);
  // Requeue after completion is a no-op.
  queue.unitDone(*again, "r", false);
  queue.requeueUnit(*again);
  EXPECT_EQ(queue.pendingUnits(), 0u);
}

}  // namespace
}  // namespace pnoc::service

// Queue-journal tests: event-line round-trips, replay (terminal events
// retire their submits), trailing-corruption tolerance (only the LAST line
// may be a crash artifact), and open()'s atomic compaction.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "scenario/scenario_spec.hpp"
#include "service/journal.hpp"

namespace pnoc::service {
namespace {

std::string readAll(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

JournalJob sampleJob(std::uint64_t id, const std::string& client) {
  scenario::ScenarioSpec spec;
  spec.set("pattern", "skewed3");
  spec.params.offeredLoad = 0.004;
  JournalJob job;
  job.id = id;
  job.client = client;
  job.priority = 3;
  job.mode = "run";
  job.bench = "nightly";
  job.dir = "out";
  job.specJson.push_back(spec.toJson());
  return job;
}

class TempPath {
 public:
  TempPath() {
    static int counter = 0;
    path_ = ::testing::TempDir() + "pnoc_journal_" + std::to_string(::getpid()) +
            "_" + std::to_string(counter++) + ".ndjson";
  }
  ~TempPath() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(ServiceJournal, SubmitLineRoundTripsByteExactSpecs) {
  const JournalJob job = sampleJob(4, "alice");
  const std::vector<JournalJob> live =
      replayJournalText(submitEventLine(job) + "\n", "test");
  ASSERT_EQ(live.size(), 1u);
  EXPECT_EQ(live[0].id, 4u);
  EXPECT_EQ(live[0].client, "alice");
  EXPECT_EQ(live[0].priority, 3u);
  EXPECT_EQ(live[0].mode, "run");
  EXPECT_EQ(live[0].bench, "nightly");
  EXPECT_EQ(live[0].dir, "out");
  // The spec bytes survive replay VERBATIM — restart re-dispatch must hash
  // to the same spec_key as the original submit.
  ASSERT_EQ(live[0].specJson.size(), 1u);
  EXPECT_EQ(live[0].specJson[0], job.specJson[0]);
}

TEST(ServiceJournal, TerminalEventsRetireTheirSubmits) {
  std::string text = submitEventLine(sampleJob(1, "a")) + "\n" +
                     submitEventLine(sampleJob(2, "b")) + "\n" +
                     submitEventLine(sampleJob(3, "c")) + "\n" +
                     "{\"event\":\"done\",\"job\":1}\n" +
                     "{\"event\":\"cancel\",\"job\":3}\n";
  const std::vector<JournalJob> live = replayJournalText(text, "test");
  ASSERT_EQ(live.size(), 1u);
  EXPECT_EQ(live[0].id, 2u);
}

TEST(ServiceJournal, TrailingGarbageIsToleratedMidFileIsNot) {
  const std::string good = submitEventLine(sampleJob(1, "a")) + "\n";
  // A torn final line is the signature of a crash mid-append: the event was
  // never acknowledged, so dropping it is correct.
  const std::vector<JournalJob> live =
      replayJournalText(good + "{\"event\":\"submit\",\"jo", "test");
  ASSERT_EQ(live.size(), 1u);
  EXPECT_EQ(live[0].id, 1u);

  // The same damage ANYWHERE else means real corruption and must throw.
  EXPECT_THROW(replayJournalText("{\"event\":\"submit\",\"jo\n" + good, "test"),
               std::invalid_argument);
  // So do semantic violations, wherever they sit.
  EXPECT_THROW(replayJournalText(good + good, "test"), std::invalid_argument);
  EXPECT_THROW(replayJournalText("{\"event\":\"done\",\"job\":9}\n", "test"),
               std::invalid_argument);
  EXPECT_THROW(replayJournalText("{\"event\":\"nope\",\"job\":1}\n", "test"),
               std::invalid_argument);
}

TEST(ServiceJournal, OpenCompactsRetiredJobsAndTrailingDamage) {
  TempPath temp;
  {
    std::ofstream out(temp.path());
    out << submitEventLine(sampleJob(1, "a")) << "\n"
        << submitEventLine(sampleJob(2, "b")) << "\n"
        << "{\"event\":\"done\",\"job\":1}\n"
        << "{\"event\":\"sub";  // torn final append
  }
  QueueJournal journal;
  const std::vector<JournalJob> live = journal.open(temp.path());
  ASSERT_EQ(live.size(), 1u);
  EXPECT_EQ(live[0].id, 2u);
  journal.close();
  // After compaction the file holds exactly the live submits.
  EXPECT_EQ(readAll(temp.path()), submitEventLine(live[0]) + "\n");
}

TEST(ServiceJournal, AppendsAreReplayableAcrossReopen) {
  TempPath temp;
  {
    QueueJournal journal;
    EXPECT_TRUE(journal.open(temp.path()).empty());
    journal.appendSubmit(sampleJob(1, "a"));
    journal.appendSubmit(sampleJob(2, "b"));
    journal.appendDone(1);
  }
  QueueJournal reopened;
  const std::vector<JournalJob> live = reopened.open(temp.path());
  ASSERT_EQ(live.size(), 1u);
  EXPECT_EQ(live[0].id, 2u);
  EXPECT_EQ(live[0].client, "b");
}

TEST(ServiceJournal, DisabledJournalIsANoOp) {
  QueueJournal journal;  // never opened: journaling off (no journal= path)
  EXPECT_NO_THROW(journal.appendSubmit(sampleJob(1, "a")));
  EXPECT_NO_THROW(journal.appendDone(1));
}

}  // namespace
}  // namespace pnoc::service

// Service-protocol tests: the banner's version/build handshake (satellite of
// the same stamp the streaming worker handshake carries) and the verb parser
// with its did-you-mean rejection.
#include <gtest/gtest.h>

#include <functional>
#include <stdexcept>
#include <string>

#include "scenario/version.hpp"
#include "scenario/wire.hpp"
#include "service/protocol.hpp"

namespace pnoc::service {
namespace {

std::string thrownMessage(const std::function<void()>& call) {
  try {
    call();
  } catch (const std::exception& error) {
    return error.what();
  }
  return "";
}

TEST(ServiceBanner, OwnBannerPassesTheHandshake) {
  EXPECT_NO_THROW(checkServiceBanner(serviceBannerLine()));
}

TEST(ServiceBanner, RejectionsAreNamed) {
  // Not a banner at all (some other JSON service answered).
  EXPECT_THROW(checkServiceBanner("{\"ok\":1}"), std::runtime_error);
  EXPECT_THROW(checkServiceBanner("hello"), std::runtime_error);
  // Protocol version mismatch.
  EXPECT_THROW(checkServiceBanner("{\"pnoc_serve\":99,\"build\":\"x\"}"),
               std::runtime_error);
  // A daemon from before build stamps.
  const std::string unstamped =
      "{\"pnoc_serve\":" + std::to_string(kServeProtocolVersion) + "}";
  EXPECT_NE(thrownMessage([&] { checkServiceBanner(unstamped); })
                .find("no build stamp"),
            std::string::npos);
  // A daemon from a DIFFERENT build: rejected by name, both stamps shown.
  const std::string mismatched =
      "{\"pnoc_serve\":" + std::to_string(kServeProtocolVersion) +
      ",\"build\":\"pnoc-0\"}";
  const std::string message =
      thrownMessage([&] { checkServiceBanner(mismatched); });
  EXPECT_NE(message.find("pnoc-0"), std::string::npos);
  EXPECT_NE(message.find(scenario::kBuildVersion), std::string::npos);
}

TEST(StreamHandshakeBuildStamp, WorkerAckIsBuildChecked) {
  // The worker-fleet side of the same satellite: an ack without a stamp, or
  // with a foreign stamp, is rejected at the handshake by name.
  EXPECT_NO_THROW(scenario::wire::checkStreamAck(scenario::wire::streamAckLine()));
  const std::string unstamped =
      "{\"pnoc_stream_ack\":" +
      std::to_string(scenario::wire::kStreamProtocolVersion) + "}";
  EXPECT_NE(thrownMessage([&] { scenario::wire::checkStreamAck(unstamped); })
                .find("no build stamp"),
            std::string::npos);
  const std::string foreign =
      "{\"pnoc_stream_ack\":" +
      std::to_string(scenario::wire::kStreamProtocolVersion) +
      ",\"build\":\"pnoc-0\"}";
  const std::string message =
      thrownMessage([&] { scenario::wire::checkStreamAck(foreign); });
  EXPECT_NE(message.find("pnoc-0"), std::string::npos);
  EXPECT_NE(message.find(scenario::kBuildVersion), std::string::npos);
}

TEST(ServiceVerbs, RoundTripAndSuggest) {
  for (const std::string& name : verbNames()) {
    EXPECT_EQ(toString(parseVerb(name)), name);
  }
  // A typo is rejected with a suggestion, not a silent default.
  const std::string message = thrownMessage([] { parseVerb("sumbit"); });
  EXPECT_NE(message.find("did you mean"), std::string::npos);
  EXPECT_NE(message.find("submit"), std::string::npos);
  EXPECT_THROW(parseVerb(""), std::invalid_argument);
}

TEST(ServiceProtocol, ErrorReplyEscapes) {
  EXPECT_EQ(errorReplyLine("bad \"spec\""),
            "{\"ok\":0,\"error\":\"bad \\\"spec\\\"\"}");
}

}  // namespace
}  // namespace pnoc::service

// Nearest-key suggestion used by every "unknown key" rejection (scenario
// keys, CLI options, workload/pattern options).
#include "sim/suggest.hpp"

#include <gtest/gtest.h>

namespace pnoc::sim {
namespace {

TEST(EditDistance, BasicCases) {
  EXPECT_EQ(editDistance("", ""), 0u);
  EXPECT_EQ(editDistance("abc", "abc"), 0u);
  EXPECT_EQ(editDistance("abc", ""), 3u);
  EXPECT_EQ(editDistance("", "abc"), 3u);
  EXPECT_EQ(editDistance("windw", "window"), 1u);   // deletion
  EXPECT_EQ(editDistance("wnidow", "window"), 2u);  // transposition = 2 edits
  EXPECT_EQ(editDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(editDistance("load", "seed"), 3u);
}

TEST(SuggestNearest, FindsCloseKeysOnly) {
  const std::vector<std::string> keys = {"window", "think", "req_flits",
                                         "reply_flits"};
  EXPECT_EQ(suggestNearest("windw", keys), "window");
  EXPECT_EQ(suggestNearest("thinks", keys), "think");
  EXPECT_EQ(suggestNearest("reply_flit", keys), "reply_flits");
  // Nothing nearby: no suggestion beats a wrong suggestion.
  EXPECT_EQ(suggestNearest("zzzzzz", keys), "");
  EXPECT_EQ(suggestNearest("", keys), "");
}

TEST(SuggestNearest, ShortKeysUseATightThreshold) {
  // A 3-letter typo must not match some arbitrary 3-letter key two edits
  // away ("din" -> "max" would be nonsense).
  const std::vector<std::string> keys = {"set", "load", "seed"};
  EXPECT_EQ(suggestNearest("sed", keys), "set");  // distance 1: ok
  EXPECT_EQ(suggestNearest("xyz", keys), "");     // distance 3 from all
}

TEST(SuggestNearest, TiePicksTheEarliestCandidate) {
  // "sead" is distance 1 from both "seed" and "sead"-less lists; with two
  // candidates at equal distance the earliest wins, deterministically.
  const std::vector<std::string> keys = {"lead", "bead"};
  EXPECT_EQ(suggestNearest("read", keys), "lead");
}

TEST(DidYouMean, FormatsTheHintOrStaysSilent) {
  const std::vector<std::string> keys = {"window", "think"};
  EXPECT_EQ(didYouMean("windw", keys), "; did you mean 'window'?");
  EXPECT_EQ(didYouMean("totally-different", keys), "");
  EXPECT_EQ(didYouMean("window", keys), "");  // exact match: caller's bug
}

}  // namespace
}  // namespace pnoc::sim

#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>
#include <vector>

namespace pnoc::sim {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next()) ? 1 : 0;
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.nextBelow(bound), bound);
  }
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.nextBelow(1), 0u);
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.nextBelow(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextBelowRoughlyUniform) {
  Rng rng(13);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  std::array<int, kBuckets> counts{};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.nextBelow(kBuckets)];
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (const int c : counts) {
    EXPECT_NEAR(c, expected, 5.0 * std::sqrt(expected));
  }
}

TEST(Rng, NextInRangeInclusive) {
  Rng rng(17);
  bool sawLo = false;
  bool sawHi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.nextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    sawLo |= (v == -3);
    sawHi |= (v == 3);
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(19);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.nextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.01);
}

TEST(Rng, NextBoolEdgeProbabilities) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.nextBool(0.0));
    EXPECT_TRUE(rng.nextBool(1.0));
    EXPECT_FALSE(rng.nextBool(-1.0));
    EXPECT_TRUE(rng.nextBool(2.0));
  }
}

TEST(Rng, NextBoolMatchesProbability) {
  Rng rng(29);
  int hits = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) hits += rng.nextBool(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(Rng, GeometricTrialsReplayPerTrialSampling) {
  // The gap draw IS the sequence of per-trial coin flips: same seed, same
  // successes, same stream position afterwards.
  Rng gap(37);
  Rng trials(37);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t failures = gap.nextGeometricTrials(0.05);
    std::uint64_t expected = 0;
    while (!trials.nextBool(0.05)) ++expected;
    ASSERT_EQ(failures, expected);
  }
  EXPECT_EQ(gap.next(), trials.next());  // streams still aligned
}

TEST(Rng, GeometricTrialsMatchTheLaw) {
  Rng rng(41);
  const double p = 0.02;
  constexpr int kDraws = 20000;
  double sum = 0.0;
  for (int i = 0; i < kDraws; ++i) sum += static_cast<double>(rng.nextGeometricTrials(p));
  const double mean = sum / kDraws;
  EXPECT_NEAR(mean, (1.0 - p) / p, 0.05 * (1.0 - p) / p);
}

TEST(Rng, GeometricTrialsCertainSuccessConsumesNothing) {
  Rng a(43);
  Rng b(43);
  EXPECT_EQ(a.nextGeometricTrials(1.0), 0u);
  EXPECT_EQ(a.nextGeometricTrials(1.5), 0u);
  EXPECT_EQ(a.next(), b.next());  // no state was consumed
}

TEST(Rng, SplitStreamsAreIndependentOfParentContinuation) {
  Rng parent(31);
  Rng child = parent.split();
  // The child must not replay the parent's continuation.
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (parent.next() == child.next()) ? 1 : 0;
  EXPECT_EQ(same, 0);
}

TEST(DiscreteDistribution, ProbabilitiesNormalized) {
  const std::vector<double> weights{1.0, 3.0, 4.0};
  DiscreteDistribution dist(weights);
  EXPECT_DOUBLE_EQ(dist.probability(0), 0.125);
  EXPECT_DOUBLE_EQ(dist.probability(1), 0.375);
  EXPECT_DOUBLE_EQ(dist.probability(2), 0.5);
}

TEST(DiscreteDistribution, SamplingMatchesWeights) {
  const std::vector<double> weights{0.9, 0.05, 0.025, 0.025};  // skewed3 shape
  DiscreteDistribution dist(weights);
  Rng rng(37);
  std::array<int, 4> counts{};
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[dist.sample(rng)];
  for (std::size_t i = 0; i < weights.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / kDraws, weights[i], 0.01)
        << "category " << i;
  }
}

TEST(DiscreteDistribution, ZeroWeightCategoryNeverSampled) {
  const std::vector<double> weights{1.0, 0.0, 1.0};
  DiscreteDistribution dist(weights);
  Rng rng(41);
  for (int i = 0; i < 5000; ++i) EXPECT_NE(dist.sample(rng), 1u);
}

TEST(DiscreteDistribution, AllZeroWeightsFallBackToUniform) {
  const std::vector<double> weights{0.0, 0.0};
  DiscreteDistribution dist(weights);
  Rng rng(43);
  std::array<int, 2> counts{};
  for (int i = 0; i < 10000; ++i) ++counts[dist.sample(rng)];
  EXPECT_GT(counts[0], 4000);
  EXPECT_GT(counts[1], 4000);
}

}  // namespace
}  // namespace pnoc::sim

#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/clock.hpp"
#include "sim/config.hpp"

namespace pnoc::sim {
namespace {

/// Records the phase interleaving so tests can assert the two-phase contract.
class Probe final : public Clocked {
 public:
  Probe(std::string name, std::vector<std::string>& log) : name_(std::move(name)), log_(&log) {}
  void evaluate(Cycle cycle) override {
    log_->push_back(name_ + ".eval@" + std::to_string(cycle));
  }
  void advance(Cycle cycle) override {
    log_->push_back(name_ + ".adv@" + std::to_string(cycle));
  }
  std::string name() const override { return name_; }

 private:
  std::string name_;
  std::vector<std::string>* log_;
};

TEST(Engine, AllEvaluatesBeforeAnyAdvance) {
  std::vector<std::string> log;
  Probe a("a", log);
  Probe b("b", log);
  Engine engine;
  engine.add(a);
  engine.add(b);
  engine.step();
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[0], "a.eval@0");
  EXPECT_EQ(log[1], "b.eval@0");
  EXPECT_EQ(log[2], "a.adv@0");
  EXPECT_EQ(log[3], "b.adv@0");
}

TEST(Engine, RunAdvancesCycleCount) {
  Engine engine;
  EXPECT_EQ(engine.now(), 0u);
  engine.run(10);
  EXPECT_EQ(engine.now(), 10u);
  engine.step();
  EXPECT_EQ(engine.now(), 11u);
}

TEST(Engine, CycleNumbersAreSequential) {
  std::vector<std::string> log;
  Probe a("a", log);
  Engine engine;
  engine.add(a);
  engine.run(3);
  ASSERT_EQ(log.size(), 6u);
  EXPECT_EQ(log[0], "a.eval@0");
  EXPECT_EQ(log[2], "a.eval@1");
  EXPECT_EQ(log[4], "a.eval@2");
}

TEST(Engine, OnCycleEndHookFiresEachCycle) {
  Engine engine;
  std::vector<Cycle> cycles;
  engine.setOnCycleEnd([&](Cycle c) { cycles.push_back(c); });
  engine.run(4);
  EXPECT_EQ(cycles, (std::vector<Cycle>{0, 1, 2, 3}));
}

/// Probe whose quiescence is externally controlled, for gating tests.
class GatedProbe final : public Clocked {
 public:
  GatedProbe(std::string name, std::vector<std::string>& log)
      : name_(std::move(name)), log_(&log) {}
  void evaluate(Cycle cycle) override {
    log_->push_back(name_ + ".eval@" + std::to_string(cycle));
  }
  void advance(Cycle cycle) override {
    log_->push_back(name_ + ".adv@" + std::to_string(cycle));
  }
  std::string name() const override { return name_; }
  bool quiescent() const override { return idle; }

  bool idle = false;

 private:
  std::string name_;
  std::vector<std::string>* log_;
};

TEST(Engine, QuiescentComponentIsParked) {
  std::vector<std::string> log;
  GatedProbe probe("p", log);
  Engine engine;
  engine.add(probe);
  EXPECT_EQ(engine.activeCount(), 1u);
  probe.idle = true;
  engine.step();  // runs this cycle, parked at its end
  EXPECT_EQ(engine.activeCount(), 0u);
  engine.run(3);  // parked: neither phase runs
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], "p.eval@0");
  EXPECT_EQ(log[1], "p.adv@0");
}

TEST(Engine, RequestWakeReactivatesFromNextCycle) {
  std::vector<std::string> log;
  GatedProbe probe("p", log);
  Engine engine;
  engine.add(probe);
  probe.idle = true;
  engine.run(2);  // parked after cycle 0
  probe.idle = false;
  probe.requestWake();
  engine.step();  // cycle 2: active again
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[2], "p.eval@2");
  EXPECT_EQ(log[3], "p.adv@2");
  EXPECT_EQ(engine.activeCount(), 1u);
}

TEST(Engine, ActiveComponentsKeepRegistrationOrderAfterWake) {
  std::vector<std::string> log;
  GatedProbe a("a", log);
  GatedProbe b("b", log);
  GatedProbe c("c", log);
  Engine engine;
  engine.add(a);
  engine.add(b);
  engine.add(c);
  a.idle = true;
  b.idle = true;
  engine.step();  // parks a and b
  log.clear();
  a.idle = false;
  a.requestWake();  // rejoin: must run before the always-active c
  engine.step();
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[0], "a.eval@1");
  EXPECT_EQ(log[1], "c.eval@1");
  EXPECT_EQ(log[2], "a.adv@1");
  EXPECT_EQ(log[3], "c.adv@1");
}

TEST(Engine, GatingOffStepsQuiescentComponents) {
  std::vector<std::string> log;
  GatedProbe probe("p", log);
  Engine engine;
  engine.setActivityGating(false);
  engine.add(probe);
  probe.idle = true;
  engine.run(3);
  EXPECT_EQ(log.size(), 6u);  // both phases every cycle despite quiescence
  EXPECT_EQ(engine.activeCount(), 1u);
}

TEST(Engine, DisablingGatingReactivatesParkedComponents) {
  std::vector<std::string> log;
  GatedProbe probe("p", log);
  Engine engine;
  engine.add(probe);
  probe.idle = true;
  engine.step();
  EXPECT_EQ(engine.activeCount(), 0u);
  engine.setActivityGating(false);
  engine.step();
  EXPECT_EQ(log.size(), 4u);
}

// --- timer wheel ---

/// Runs the engine until `cycle` has been stepped (now() == cycle + 1).
void runThrough(Engine& engine, Cycle cycle) {
  while (engine.now() <= cycle) engine.step();
}

TEST(EngineTimers, WakesParkedComponentAtScheduledCycle) {
  std::vector<std::string> log;
  GatedProbe probe("p", log);
  Engine engine;
  engine.add(probe);
  probe.idle = true;
  engine.step();  // parks at the end of cycle 0
  probe.scheduleWakeAt(5);
  EXPECT_EQ(engine.pendingTimerCount(), 1u);
  runThrough(engine, 10);
  // Exactly one extra activation, at cycle 5 (parks again at its end).
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[2], "p.eval@5");
  EXPECT_EQ(log[3], "p.adv@5");
  EXPECT_EQ(engine.pendingTimerCount(), 0u);
  EXPECT_EQ(engine.stats().timersFired, 1u);
}

TEST(EngineTimers, FarFutureSchedulesCrossWheelLevels) {
  // 3 lands in the level-0 window, 700 needs a level-1 cascade, 70000 is
  // beyond the 65536-cycle horizon and sits in overflow until its lap.
  std::vector<std::string> log;
  GatedProbe probe("p", log);
  Engine engine;
  engine.add(probe);
  probe.idle = true;
  engine.step();
  for (const Cycle due : {Cycle{3}, Cycle{700}, Cycle{70000}}) {
    probe.scheduleWakeAt(due);
  }
  EXPECT_EQ(engine.pendingTimerCount(), 3u);
  runThrough(engine, 70001);
  ASSERT_EQ(log.size(), 8u);
  EXPECT_EQ(log[2], "p.eval@3");
  EXPECT_EQ(log[4], "p.eval@700");
  EXPECT_EQ(log[6], "p.eval@70000");
  EXPECT_EQ(engine.pendingTimerCount(), 0u);
}

TEST(EngineTimers, PastDueClampsToNextCycle) {
  std::vector<std::string> log;
  GatedProbe probe("p", log);
  Engine engine;
  engine.add(probe);
  probe.idle = true;
  engine.run(4);  // parked after cycle 0; now() == 4
  probe.scheduleWakeAt(1);  // long past: must fire at cycle 5, not be lost
  engine.run(3);
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[2], "p.eval@5");
}

TEST(EngineTimers, SameCycleTimerAndWakeActivateOnce) {
  std::vector<std::string> log;
  GatedProbe probe("p", log);
  Engine engine;
  engine.add(probe);
  probe.idle = true;
  engine.step();
  probe.scheduleWakeAt(3);
  probe.requestWake();  // wake lands at cycle 1... but probe re-parks
  runThrough(engine, 4);
  // One activation from the wake (cycle 1), one from the timer (cycle 3);
  // the coincidence at a single drain would still activate exactly once.
  ASSERT_EQ(log.size(), 6u);
  EXPECT_EQ(log[2], "p.eval@1");
  EXPECT_EQ(log[4], "p.eval@3");
}

TEST(EngineTimers, TimerAndWakeOnSameCycleCollapse) {
  std::vector<std::string> log;
  GatedProbe a("a", log);
  GatedProbe b("b", log);
  Engine engine;
  engine.add(a);
  engine.add(b);
  a.idle = true;
  b.idle = true;
  engine.step();  // both parked after cycle 0
  // b gets BOTH a timer for cycle 2 and a plain wake landing at cycle 2;
  // a gets only a timer — activation order must stay registration order.
  b.scheduleWakeAt(2);
  a.scheduleWakeAt(2);
  engine.step();  // cycle 1: both still parked
  b.requestWake();
  log.clear();
  engine.step();  // cycle 2
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[0], "a.eval@2");
  EXPECT_EQ(log[1], "b.eval@2");
  EXPECT_EQ(log[2], "a.adv@2");
  EXPECT_EQ(log[3], "b.adv@2");
}

TEST(EngineTimers, FireOnActiveComponentIsDropped) {
  std::vector<std::string> log;
  GatedProbe probe("p", log);
  Engine engine;
  engine.add(probe);  // stays active (idle == false)
  probe.scheduleWakeAt(2);
  engine.run(4);
  EXPECT_EQ(engine.pendingTimerCount(), 0u);  // consumed ...
  EXPECT_EQ(engine.stats().timersFired, 0u);  // ... but not delivered
  EXPECT_EQ(log.size(), 8u);                  // stepped every cycle regardless
}

TEST(EngineTimers, ResetDropsPendingTimers) {
  std::vector<std::string> log;
  GatedProbe probe("p", log);
  Engine engine;
  engine.add(probe);
  probe.idle = true;
  engine.step();
  probe.scheduleWakeAt(4);
  probe.scheduleWakeAt(70000);
  EXPECT_EQ(engine.pendingTimerCount(), 2u);
  engine.reset();
  EXPECT_EQ(engine.pendingTimerCount(), 0u);
  log.clear();
  runThrough(engine, 6);
  // Active at cycle 0 (reset reactivates), parked after; no timer fires.
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], "p.eval@0");
}

TEST(EngineTimers, SurviveGatingToggle) {
  std::vector<std::string> log;
  GatedProbe probe("p", log);
  Engine engine;
  engine.add(probe);
  probe.idle = true;
  engine.step();
  probe.scheduleWakeAt(1000);
  engine.setActivityGating(false);
  engine.run(3);  // everything steps anyway; the timer must survive
  EXPECT_EQ(engine.pendingTimerCount(), 1u);
  engine.setActivityGating(true);
  engine.step();  // probe parks again (idle)
  log.clear();
  runThrough(engine, 1001);
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], "p.eval@1000");
}

TEST(EngineTimers, MidCycleWakePreventsParkingThatCycle) {
  // A component that receives a wake DURING a cycle (e.g. a link draining a
  // slot in its advance phase) must not park at that cycle's end even if it
  // reports quiescent — the wake would otherwise be lost.
  std::vector<std::string> log;
  GatedProbe target("t", log);

  class Waker final : public Clocked {
   public:
    explicit Waker(Clocked& target) : target_(&target) {}
    void evaluate(Cycle) override {}
    void advance(Cycle) override {
      if (fire) {
        target_->requestWake();
        fire = false;
      }
    }
    std::string name() const override { return "waker"; }
    bool fire = false;

   private:
    Clocked* target_;
  };

  Waker waker(target);
  Engine engine;
  engine.add(target);
  engine.add(waker);
  target.idle = true;
  waker.fire = true;
  engine.step();  // wake arrives mid-cycle 0: target must stay active
  EXPECT_EQ(engine.activeCount(), 2u);
  engine.step();  // no new wake: target parks at the end of cycle 1
  EXPECT_EQ(engine.activeCount(), 1u);
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[2], "t.eval@1");
}

TEST(EngineStats, TracksStepsAndParkRate) {
  std::vector<std::string> log;
  GatedProbe busy("busy", log);
  GatedProbe idle("idle", log);
  Engine engine;
  engine.add(busy);
  engine.add(idle);
  idle.idle = true;
  engine.run(10);
  const EngineStats& stats = engine.stats();
  EXPECT_EQ(stats.cycles, 10u);
  EXPECT_EQ(stats.componentSteps, 11u);  // both at cycle 0, busy alone after
  EXPECT_NEAR(stats.parkRate(engine.componentCount()), 1.0 - 11.0 / 20.0, 1e-12);
  engine.reset();
  EXPECT_EQ(engine.stats().cycles, 0u);
}

TEST(Clock, DefaultMatchesTable33) {
  Clock clock;
  EXPECT_DOUBLE_EQ(clock.frequencyHz(), 2.5e9);
  EXPECT_DOUBLE_EQ(clock.periodSeconds(), 400e-12);
}

TEST(Clock, WavelengthBitsPerCycleIsFive) {
  // 12.5 Gb/s per wavelength at 2.5 GHz -> 5 bits per cycle (Section 3.4).
  Clock clock;
  EXPECT_DOUBLE_EQ(clock.bitsPerCycle(12.5e9), 5.0);
}

TEST(Clock, CyclesForSecondsRoundsUp) {
  Clock clock;
  EXPECT_EQ(clock.cyclesForSeconds(400e-12), 1u);
  EXPECT_EQ(clock.cyclesForSeconds(401e-12), 2u);
  EXPECT_EQ(clock.cyclesForSeconds(0.0), 0u);
}

TEST(Clock, ToSecondsRoundTrips) {
  Clock clock;
  EXPECT_DOUBLE_EQ(clock.toSeconds(10000), 4e-6);
}

TEST(Config, ParsesKeyValuePairs) {
  Config config;
  const char* argv[] = {"a=1", "b=hello", "c=0.5"};
  EXPECT_FALSE(config.parseArgs(3, argv).has_value());
  EXPECT_EQ(config.getInt("a", 0), 1);
  EXPECT_EQ(config.getString("b", ""), "hello");
  EXPECT_DOUBLE_EQ(config.getDouble("c", 0.0), 0.5);
}

TEST(Config, RejectsMalformedArguments) {
  Config config;
  const char* argv[] = {"novalue"};
  EXPECT_TRUE(config.parseArgs(1, argv).has_value());
  const char* argv2[] = {"=x"};
  EXPECT_TRUE(config.parseArgs(1, argv2).has_value());
}

TEST(Config, FallbacksWhenMissing) {
  Config config;
  EXPECT_EQ(config.getInt("missing", 7), 7);
  EXPECT_EQ(config.getString("missing", "d"), "d");
  EXPECT_TRUE(config.getBool("missing", true));
}

TEST(Config, ThrowsOnUnparseableValues) {
  Config config;
  config.set("n", "abc");
  EXPECT_THROW(config.getInt("n", 0), std::invalid_argument);
  config.set("d", "1.2.3");
  EXPECT_THROW(config.getDouble("d", 0.0), std::invalid_argument);
  config.set("b", "maybe");
  EXPECT_THROW(config.getBool("b", false), std::invalid_argument);
}

TEST(Config, BoolAcceptsCommonSpellings) {
  Config config;
  config.set("a", "TRUE");
  config.set("b", "off");
  config.set("c", "1");
  EXPECT_TRUE(config.getBool("a", false));
  EXPECT_FALSE(config.getBool("b", true));
  EXPECT_TRUE(config.getBool("c", false));
}

TEST(Config, TracksUnconsumedKeys) {
  Config config;
  config.set("used", "1");
  config.set("typo", "2");
  config.getInt("used", 0);
  const auto unused = config.unconsumedKeys();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

}  // namespace
}  // namespace pnoc::sim

#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/clock.hpp"
#include "sim/config.hpp"

namespace pnoc::sim {
namespace {

/// Records the phase interleaving so tests can assert the two-phase contract.
class Probe final : public Clocked {
 public:
  Probe(std::string name, std::vector<std::string>& log) : name_(std::move(name)), log_(&log) {}
  void evaluate(Cycle cycle) override {
    log_->push_back(name_ + ".eval@" + std::to_string(cycle));
  }
  void advance(Cycle cycle) override {
    log_->push_back(name_ + ".adv@" + std::to_string(cycle));
  }
  std::string name() const override { return name_; }

 private:
  std::string name_;
  std::vector<std::string>* log_;
};

TEST(Engine, AllEvaluatesBeforeAnyAdvance) {
  std::vector<std::string> log;
  Probe a("a", log);
  Probe b("b", log);
  Engine engine;
  engine.add(a);
  engine.add(b);
  engine.step();
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[0], "a.eval@0");
  EXPECT_EQ(log[1], "b.eval@0");
  EXPECT_EQ(log[2], "a.adv@0");
  EXPECT_EQ(log[3], "b.adv@0");
}

TEST(Engine, RunAdvancesCycleCount) {
  Engine engine;
  EXPECT_EQ(engine.now(), 0u);
  engine.run(10);
  EXPECT_EQ(engine.now(), 10u);
  engine.step();
  EXPECT_EQ(engine.now(), 11u);
}

TEST(Engine, CycleNumbersAreSequential) {
  std::vector<std::string> log;
  Probe a("a", log);
  Engine engine;
  engine.add(a);
  engine.run(3);
  ASSERT_EQ(log.size(), 6u);
  EXPECT_EQ(log[0], "a.eval@0");
  EXPECT_EQ(log[2], "a.eval@1");
  EXPECT_EQ(log[4], "a.eval@2");
}

TEST(Engine, OnCycleEndHookFiresEachCycle) {
  Engine engine;
  std::vector<Cycle> cycles;
  engine.setOnCycleEnd([&](Cycle c) { cycles.push_back(c); });
  engine.run(4);
  EXPECT_EQ(cycles, (std::vector<Cycle>{0, 1, 2, 3}));
}

/// Probe whose quiescence is externally controlled, for gating tests.
class GatedProbe final : public Clocked {
 public:
  GatedProbe(std::string name, std::vector<std::string>& log)
      : name_(std::move(name)), log_(&log) {}
  void evaluate(Cycle cycle) override {
    log_->push_back(name_ + ".eval@" + std::to_string(cycle));
  }
  void advance(Cycle cycle) override {
    log_->push_back(name_ + ".adv@" + std::to_string(cycle));
  }
  std::string name() const override { return name_; }
  bool quiescent() const override { return idle; }

  bool idle = false;

 private:
  std::string name_;
  std::vector<std::string>* log_;
};

TEST(Engine, QuiescentComponentIsParked) {
  std::vector<std::string> log;
  GatedProbe probe("p", log);
  Engine engine;
  engine.add(probe);
  EXPECT_EQ(engine.activeCount(), 1u);
  probe.idle = true;
  engine.step();  // runs this cycle, parked at its end
  EXPECT_EQ(engine.activeCount(), 0u);
  engine.run(3);  // parked: neither phase runs
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], "p.eval@0");
  EXPECT_EQ(log[1], "p.adv@0");
}

TEST(Engine, RequestWakeReactivatesFromNextCycle) {
  std::vector<std::string> log;
  GatedProbe probe("p", log);
  Engine engine;
  engine.add(probe);
  probe.idle = true;
  engine.run(2);  // parked after cycle 0
  probe.idle = false;
  probe.requestWake();
  engine.step();  // cycle 2: active again
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[2], "p.eval@2");
  EXPECT_EQ(log[3], "p.adv@2");
  EXPECT_EQ(engine.activeCount(), 1u);
}

TEST(Engine, ActiveComponentsKeepRegistrationOrderAfterWake) {
  std::vector<std::string> log;
  GatedProbe a("a", log);
  GatedProbe b("b", log);
  GatedProbe c("c", log);
  Engine engine;
  engine.add(a);
  engine.add(b);
  engine.add(c);
  a.idle = true;
  b.idle = true;
  engine.step();  // parks a and b
  log.clear();
  a.idle = false;
  a.requestWake();  // rejoin: must run before the always-active c
  engine.step();
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[0], "a.eval@1");
  EXPECT_EQ(log[1], "c.eval@1");
  EXPECT_EQ(log[2], "a.adv@1");
  EXPECT_EQ(log[3], "c.adv@1");
}

TEST(Engine, GatingOffStepsQuiescentComponents) {
  std::vector<std::string> log;
  GatedProbe probe("p", log);
  Engine engine;
  engine.setActivityGating(false);
  engine.add(probe);
  probe.idle = true;
  engine.run(3);
  EXPECT_EQ(log.size(), 6u);  // both phases every cycle despite quiescence
  EXPECT_EQ(engine.activeCount(), 1u);
}

TEST(Engine, DisablingGatingReactivatesParkedComponents) {
  std::vector<std::string> log;
  GatedProbe probe("p", log);
  Engine engine;
  engine.add(probe);
  probe.idle = true;
  engine.step();
  EXPECT_EQ(engine.activeCount(), 0u);
  engine.setActivityGating(false);
  engine.step();
  EXPECT_EQ(log.size(), 4u);
}

TEST(Clock, DefaultMatchesTable33) {
  Clock clock;
  EXPECT_DOUBLE_EQ(clock.frequencyHz(), 2.5e9);
  EXPECT_DOUBLE_EQ(clock.periodSeconds(), 400e-12);
}

TEST(Clock, WavelengthBitsPerCycleIsFive) {
  // 12.5 Gb/s per wavelength at 2.5 GHz -> 5 bits per cycle (Section 3.4).
  Clock clock;
  EXPECT_DOUBLE_EQ(clock.bitsPerCycle(12.5e9), 5.0);
}

TEST(Clock, CyclesForSecondsRoundsUp) {
  Clock clock;
  EXPECT_EQ(clock.cyclesForSeconds(400e-12), 1u);
  EXPECT_EQ(clock.cyclesForSeconds(401e-12), 2u);
  EXPECT_EQ(clock.cyclesForSeconds(0.0), 0u);
}

TEST(Clock, ToSecondsRoundTrips) {
  Clock clock;
  EXPECT_DOUBLE_EQ(clock.toSeconds(10000), 4e-6);
}

TEST(Config, ParsesKeyValuePairs) {
  Config config;
  const char* argv[] = {"a=1", "b=hello", "c=0.5"};
  EXPECT_FALSE(config.parseArgs(3, argv).has_value());
  EXPECT_EQ(config.getInt("a", 0), 1);
  EXPECT_EQ(config.getString("b", ""), "hello");
  EXPECT_DOUBLE_EQ(config.getDouble("c", 0.0), 0.5);
}

TEST(Config, RejectsMalformedArguments) {
  Config config;
  const char* argv[] = {"novalue"};
  EXPECT_TRUE(config.parseArgs(1, argv).has_value());
  const char* argv2[] = {"=x"};
  EXPECT_TRUE(config.parseArgs(1, argv2).has_value());
}

TEST(Config, FallbacksWhenMissing) {
  Config config;
  EXPECT_EQ(config.getInt("missing", 7), 7);
  EXPECT_EQ(config.getString("missing", "d"), "d");
  EXPECT_TRUE(config.getBool("missing", true));
}

TEST(Config, ThrowsOnUnparseableValues) {
  Config config;
  config.set("n", "abc");
  EXPECT_THROW(config.getInt("n", 0), std::invalid_argument);
  config.set("d", "1.2.3");
  EXPECT_THROW(config.getDouble("d", 0.0), std::invalid_argument);
  config.set("b", "maybe");
  EXPECT_THROW(config.getBool("b", false), std::invalid_argument);
}

TEST(Config, BoolAcceptsCommonSpellings) {
  Config config;
  config.set("a", "TRUE");
  config.set("b", "off");
  config.set("c", "1");
  EXPECT_TRUE(config.getBool("a", false));
  EXPECT_FALSE(config.getBool("b", true));
  EXPECT_TRUE(config.getBool("c", false));
}

TEST(Config, TracksUnconsumedKeys) {
  Config config;
  config.set("used", "1");
  config.set("typo", "2");
  config.getInt("used", 0);
  const auto unused = config.unconsumedKeys();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

}  // namespace
}  // namespace pnoc::sim

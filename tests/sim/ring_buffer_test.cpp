#include "sim/ring_buffer.hpp"

#include <gtest/gtest.h>

namespace pnoc::sim {
namespace {

TEST(RingBuffer, StartsEmpty) {
  RingBuffer<int> buffer(3);
  EXPECT_TRUE(buffer.empty());
  EXPECT_FALSE(buffer.full());
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_EQ(buffer.capacity(), 3u);
  EXPECT_EQ(buffer.freeSlots(), 3u);
}

TEST(RingBuffer, FifoOrder) {
  RingBuffer<int> buffer(4);
  for (int i = 1; i <= 4; ++i) buffer.push_back(i);
  EXPECT_TRUE(buffer.full());
  for (int i = 1; i <= 4; ++i) {
    EXPECT_EQ(buffer.front(), i);
    buffer.pop_front();
  }
  EXPECT_TRUE(buffer.empty());
}

TEST(RingBuffer, WrapsAroundManyTimes) {
  // Interleaved push/pop crosses the wrap boundary repeatedly; FIFO order
  // and size accounting must survive it.
  RingBuffer<int> buffer(3);
  int next = 0;
  int expect = 0;
  buffer.push_back(next++);
  buffer.push_back(next++);
  for (int round = 0; round < 50; ++round) {
    EXPECT_EQ(buffer.front(), expect++);
    buffer.pop_front();
    buffer.push_back(next++);
    EXPECT_EQ(buffer.size(), 2u);
  }
  EXPECT_EQ(buffer.front(), expect);
}

TEST(RingBuffer, AtIndexesFromFront) {
  RingBuffer<int> buffer(3);
  buffer.push_back(10);
  buffer.push_back(11);
  buffer.pop_front();
  buffer.push_back(12);  // storage now wraps
  ASSERT_EQ(buffer.size(), 2u);
  EXPECT_EQ(buffer.at(0), 11);
  EXPECT_EQ(buffer.at(1), 12);
}

TEST(RingBuffer, ClearResets) {
  RingBuffer<int> buffer(2);
  buffer.push_back(1);
  buffer.push_back(2);
  buffer.clear();
  EXPECT_TRUE(buffer.empty());
  buffer.push_back(7);
  EXPECT_EQ(buffer.front(), 7);
}

TEST(RingBuffer, CapacityOne) {
  RingBuffer<int> buffer(1);
  for (int i = 0; i < 5; ++i) {
    buffer.push_back(i);
    EXPECT_TRUE(buffer.full());
    EXPECT_EQ(buffer.front(), i);
    buffer.pop_front();
    EXPECT_TRUE(buffer.empty());
  }
}

}  // namespace
}  // namespace pnoc::sim

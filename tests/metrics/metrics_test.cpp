#include "metrics/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "metrics/report.hpp"
#include "metrics/saturation.hpp"

namespace pnoc::metrics {
namespace {

TEST(RunMetrics, DerivedQuantities) {
  RunMetrics m;
  m.measuredCycles = 10000;
  m.measuredSeconds = 4e-6;  // 10000 cycles at 2.5 GHz
  m.bitsDelivered = 4'000'000;
  m.packetsDelivered = 100;
  m.latencyCyclesSum = 25000;
  m.packetsOffered = 125;
  m.ledger.add(photonic::EnergyCategory::kLaunch, 5000.0);
  EXPECT_DOUBLE_EQ(m.deliveredGbps(), 1000.0);
  EXPECT_DOUBLE_EQ(m.deliveredGbpsPerCore(64), 15.625);
  EXPECT_DOUBLE_EQ(m.energyPerPacketPj(), 50.0);
  EXPECT_DOUBLE_EQ(m.avgLatencyCycles(), 250.0);
  EXPECT_DOUBLE_EQ(m.acceptance(), 0.8);
}

TEST(RunMetrics, EmptyWindowIsSafe) {
  RunMetrics m;
  EXPECT_DOUBLE_EQ(m.deliveredGbps(), 0.0);
  EXPECT_DOUBLE_EQ(m.energyPerPacketPj(), 0.0);
  EXPECT_DOUBLE_EQ(m.avgLatencyCycles(), 0.0);
  EXPECT_DOUBLE_EQ(m.acceptance(), 1.0);
}

/// Synthetic network: delivered = min(offered, capacity); EPM rises past the
/// knee.  findPeak must locate the capacity.
RunMetrics synthetic(double load, double capacityGbps) {
  RunMetrics m;
  m.measuredCycles = 10000;
  m.measuredSeconds = 4e-6;
  const double offeredGbps = load * 1e5;  // arbitrary scale
  const double deliveredGbps = std::min(offeredGbps, capacityGbps);
  m.bitsDelivered = static_cast<Bits>(deliveredGbps * 1e9 * m.measuredSeconds);
  m.packetsDelivered = static_cast<std::uint64_t>(m.bitsDelivered / 2048);
  m.packetsOffered = static_cast<std::uint64_t>(offeredGbps * 1e9 * m.measuredSeconds / 2048);
  return m;
}

TEST(Saturation, FindsCapacityKnee) {
  PeakSearchOptions options;
  options.startLoad = 0.0001;
  const auto result =
      findPeak([](double load) { return synthetic(load, 250.0); }, options);
  EXPECT_NEAR(result.peak.metrics.deliveredGbps(), 250.0, 25.0);
  EXPECT_GE(result.peak.metrics.acceptance(), options.acceptanceFloor);
  EXPECT_GT(result.sweep.size(), 4u);
}

TEST(Saturation, HigherCapacityYieldsHigherPeak) {
  PeakSearchOptions options;
  options.startLoad = 0.0001;
  const auto low = findPeak([](double l) { return synthetic(l, 100.0); }, options);
  const auto high = findPeak([](double l) { return synthetic(l, 400.0); }, options);
  EXPECT_GT(high.peak.metrics.deliveredGbps(), 2.0 * low.peak.metrics.deliveredGbps());
}

TEST(Saturation, SweepLoadsAreMonotoneDuringRamp) {
  PeakSearchOptions options;
  options.startLoad = 0.001;
  options.bisectionSteps = 0;
  const auto result = findPeak([](double l) { return synthetic(l, 200.0); }, options);
  for (std::size_t i = 1; i < result.sweep.size(); ++i) {
    EXPECT_GT(result.sweep[i].offeredLoad, result.sweep[i - 1].offeredLoad);
  }
}

TEST(ReportTable, RendersAlignedColumns) {
  ReportTable table("demo");
  table.setHeader({"name", "value"});
  table.addRow({"alpha", "1"});
  table.addRow({"b", "22222"});
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("== demo =="), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("22222"), std::string::npos);
  // Header separator present.
  EXPECT_NE(text.find("---"), std::string::npos);
}

TEST(ReportTable, NumberFormatting) {
  EXPECT_EQ(ReportTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(ReportTable::num(2.0, 0), "2");
  EXPECT_EQ(ReportTable::percent(0.0712), "+7.1%");
  EXPECT_EQ(ReportTable::percent(-0.05), "-5.0%");
}

}  // namespace
}  // namespace pnoc::metrics

#include "metrics/histogram.hpp"

#include <gtest/gtest.h>

#include "sim/rng.hpp"

namespace pnoc::metrics {
namespace {

TEST(LatencyHistogram, EmptyIsSafe) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(LatencyHistogram, MeanMinMaxExact) {
  LatencyHistogram h;
  for (const Cycle c : {10u, 20u, 30u}) h.record(c);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
  EXPECT_EQ(h.min(), 10u);
  EXPECT_EQ(h.max(), 30u);
}

TEST(LatencyHistogram, QuantilesBracketTruth) {
  // Power-of-two buckets: a quantile is correct within a factor of 2.
  LatencyHistogram h;
  sim::Rng rng(5);
  for (int i = 0; i < 10000; ++i) h.record(100 + rng.nextBelow(100));  // U[100,200)
  const double p50 = h.quantile(0.5);
  EXPECT_GE(p50, 100.0);
  EXPECT_LE(p50, 300.0);
  EXPECT_LE(h.quantile(0.1), h.quantile(0.9));
  EXPECT_LE(h.quantile(0.9), h.quantile(0.99));
}

TEST(LatencyHistogram, TailQuantileSeesOutliers) {
  LatencyHistogram h;
  for (int i = 0; i < 99; ++i) h.record(10);
  h.record(100000);
  EXPECT_LT(h.quantile(0.5), 32.0);
  EXPECT_GT(h.quantile(0.999), 50000.0);
}

TEST(LatencyHistogram, AccumulateAndWindowDiff) {
  LatencyHistogram warmup;
  for (int i = 0; i < 50; ++i) warmup.record(1000);  // slow warmup packets
  LatencyHistogram total = warmup;
  for (int i = 0; i < 100; ++i) total.record(10);  // fast steady-state
  const LatencyHistogram window = total.since(warmup);
  EXPECT_EQ(window.count(), 100u);
  EXPECT_LT(window.quantile(0.5), 32.0);  // warmup packets excluded
}

TEST(LatencyHistogram, ZeroAndHugeValuesLand) {
  LatencyHistogram h;
  h.record(0);
  h.record(kNoCycle - 1);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.min(), 0u);
}

}  // namespace
}  // namespace pnoc::metrics
